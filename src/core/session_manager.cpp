#include "core/session_manager.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace stagg {

namespace {
constexpr TimeNs kNoStagedEvents = std::numeric_limits<TimeNs>::max();

/// window_end + dt * slices without signed overflow: a far-future slide
/// saturates to the representable max — the watermark only needs an upper
/// bound on where the windows land.
TimeNs slide_target(TimeNs window_end, TimeNs dt, std::int32_t slices) {
  constexpr TimeNs lim = std::numeric_limits<TimeNs>::max();
  if (slices <= 0 || dt <= 0) return window_end;
  const TimeNs advance = dt > lim / slices ? lim : dt * slices;
  return window_end > lim - advance ? lim : window_end + advance;
}
}  // namespace

SessionManager::SessionManager(const Hierarchy& hierarchy,
                               std::shared_ptr<TraceStore> store)
    : hierarchy_(&hierarchy),
      store_(std::move(store)),
      staged_min_(kNoStagedEvents),
      sealed_dirty_min_(kNoStagedEvents) {
  if (!store_) throw InvalidArgument("SessionManager: null trace store");
  store_->seal_chunk();
  // A freshly attached store is a complete recorded prefix: everything in
  // it is sealed, so the watermark starts at its end.
  watermark_ = store_->end();
}

SessionManager::SessionManager(const Hierarchy& hierarchy,
                               std::shared_ptr<ShardedTraceStore> sharded)
    : hierarchy_(&hierarchy),
      sharded_(std::move(sharded)),
      staged_min_(kNoStagedEvents),
      sealed_dirty_min_(kNoStagedEvents) {
  if (!sharded_) {
    throw InvalidArgument("SessionManager: null sharded trace store");
  }
  if (&sharded_->hierarchy() != &hierarchy) {
    throw InvalidArgument(
        "SessionManager: the sharded store partitions a different "
        "hierarchy than the manager's default scope");
  }
  // store_ aliases shard 0 so registry reads stay branch-free (every
  // shard mirrors the facade's states); all mutations route through the
  // facade.
  store_ = sharded_->shard_ptr(0);
  sharded_->seal_chunk();
  watermark_ = sharded_->end();
}

std::size_t SessionManager::add_session(SessionSpec spec) {
  if (sharded_ != nullptr) {
    sharded_->seal_chunk();
  } else {
    store_->seal_chunk();
  }
  const Hierarchy* scope = spec.hierarchy != nullptr ? spec.hierarchy
                                                     : hierarchy_;
  spec.options.prune_trace = false;  // eviction is centralized here
  spec.options.memory_budget_bytes = 0;  // so is the memory policy
  spec.options.spill_path.clear();
  spec.options.compression = ChunkCompression::kNone;  // and the codec policy
  if (sharded_ != nullptr) {
    // The sharded session ctor adopts the store's ShardPlan for its
    // aggregator and routes views per shard; scoped hierarchies work the
    // same as in single-store mode (the plan is ignored for them).
    sessions_.push_back(std::make_unique<SlidingWindowSession>(
        *scope, std::shared_ptr<const ShardedTraceStore>(sharded_),
        spec.window, std::move(spec.ps), spec.options));
  } else {
    sessions_.push_back(std::make_unique<SlidingWindowSession>(
        *scope, store_, spec.window, std::move(spec.ps), spec.options,
        StoreOwnership::kShared));
  }
  // The initial run may have rehydrated nothing, but attaching usually
  // follows fresh ingest; re-establish the cap before the next caller
  // looks at resident bytes.
  enforce_memory_budget();
  return sessions_.size() - 1;
}

void SessionManager::set_memory_budget(std::size_t budget_bytes,
                                       const std::string& spill_path) {
  if (budget_bytes != 0) {
    if (!spill_path.empty()) {
      if (sharded_ != nullptr) {
        sharded_->enable_spill(spill_path);  // per-shard files path.s<k>
      } else {
        store_->enable_spill(spill_path);
      }
    } else if (sharded_ != nullptr ? !sharded_->spill_enabled()
                                   : !store_->spill_enabled()) {
      throw InvalidArgument(
          "SessionManager::set_memory_budget: the store has no spill file "
          "(pass spill_path or call enable_spill on the store)");
    }
  }
  memory_budget_ = budget_bytes;
  enforce_memory_budget();
}

void SessionManager::enforce_memory_budget() {
  if (memory_budget_ == 0) return;
  // Sharded stores split the global budget across shards proportionally
  // to their resident bytes (floor shares, Σ shares <= budget), so one
  // manager-level cap bounds the whole fleet exactly.
  if (sharded_ != nullptr) {
    (void)sharded_->spill_cold(memory_budget_);
  } else {
    (void)store_->spill_cold(memory_budget_);
  }
}

void SessionManager::set_compression(ChunkCompression policy) {
  if (sharded_ != nullptr) {
    sharded_->set_compression(policy);
  } else {
    store_->set_compression(policy);
  }
  // Re-encoding may have freed resident bytes; nothing to spill beyond
  // the standing budget, but re-check so callers observe the cap holding.
  enforce_memory_budget();
}

void SessionManager::append(ResourceId resource, StateId state, TimeNs begin,
                            TimeNs end) {
  if (state < 0 ||
      static_cast<std::size_t>(state) >= store_->states().size()) {
    throw InvalidArgument(
        "SessionManager::append: unknown state id " + std::to_string(state) +
        " (sessions pin |X|; new states require a new store)");
  }
  if (sharded_ != nullptr) {
    sharded_->add_state(resource, state, begin, end);
  } else {
    store_->add_state(resource, state, begin, end);
  }
  staged_min_ = std::min(staged_min_, begin);
}

void SessionManager::append(ResourceId resource, std::string_view state_name,
                            TimeNs begin, TimeNs end) {
  const auto id = store_->states().find(state_name);
  if (!id) {
    throw InvalidArgument("SessionManager::append: unknown state '" +
                          std::string(state_name) +
                          "' (sessions pin |X|; new states require a new "
                          "store)");
  }
  append(resource, *id, begin, end);
}

void SessionManager::ingest(std::span<const EventRecord> records) {
  if (sharded_ != nullptr) {
    // Track the whole batch's dirty frontier before appending (if the
    // facade rejects a record mid-batch, an over-conservative note costs
    // one refresh), then let the facade bucket the batch and append every
    // shard's share from its own parallel task.
    for (const EventRecord& rec : records) {
      staged_min_ = std::min(staged_min_, rec.begin);
    }
    sharded_->ingest(records);
    return;
  }
  for (const EventRecord& rec : records) {
    // Track the dirty frontier before appending: if add_state rejects the
    // record, an over-conservative note costs one refresh, while a missed
    // note would hide already-appended events from the sessions.
    staged_min_ = std::min(staged_min_, rec.begin);
    store_->add_state(rec.resource, rec.state, rec.begin, rec.end);
  }
}

TimeNs SessionManager::seal_staged(TimeNs frontier) {
  if (sharded_ != nullptr) {
    sharded_->seal_chunk();
  } else {
    store_->seal_chunk();
  }
  const TimeNs staged = std::exchange(staged_min_, kNoStagedEvents);
  if (staged != kNoStagedEvents) {
    sealed_dirty_min_ = std::min(sealed_dirty_min_, staged);
  }
  watermark_ = std::max(watermark_, frontier);
  STAGG_AUDIT(audit());
  return watermark_;
}

template <class Advance>
void SessionManager::run_advance_stage(const Advance& advance) {
  const TimeNs dirty = std::exchange(sealed_dirty_min_, kNoStagedEvents);
  // Parallel over sessions: each session touches only its own model and
  // retained DP state and reads the store through an immutable chunk
  // snapshot; the help-while-waiting pool composes this outer fan-out
  // with the sessions' inner parallel_for waves.
  parallel_for(
      sessions_.size(),
      [&](std::size_t i) {
        SlidingWindowSession& s = *sessions_[i];
        if (dirty != kNoStagedEvents) s.note_external_ingest(dirty);
        advance(s);
      },
      /*grain=*/1);
  // With no session attached there is no window to bound eviction by;
  // evicting to the store begin would only poison the horizon and reject
  // perfectly valid sessions attached later.
  if (!sessions_.empty()) {
    const TimeNs horizon = min_window_begin();
    if (sharded_ != nullptr) {
      sharded_->evict_before(horizon);
    } else {
      store_->evict_before(horizon);
    }
  }
  // Eviction first (unlinking is cheaper than spilling), then the budget
  // over whatever survived.
  enforce_memory_budget();
  // The budget holds exactly after enforcement: spill_cold only stops
  // early once no resident sealed chunk is left, and then the resident
  // bytes are zero (per shard under a sharded store, whose floor shares
  // never sum past the global cap).
  STAGG_ASSERT(memory_budget_ == 0 ||
                   resident_chunk_bytes() <= memory_budget_,
               "memory budget violated after the advance stage");
  STAGG_AUDIT(audit());
}

void SessionManager::advance_to_watermark(TimeNs wm) {
  if (wm > watermark_) {
    throw InvalidArgument(
        "SessionManager::advance_to_watermark: frontier " +
        std::to_string(wm) + " is beyond the sealed watermark " +
        std::to_string(watermark_) + " (seal_staged first)");
  }
  run_advance_stage([wm](SlidingWindowSession& s) {
    const TimeGrid& window = s.window();
    const TimeNs dt = window.uniform_dt_ns();
    const TimeNs gap = wm - window.end();
    // gap/dt can exceed int32 for a far-ahead frontier; clamp instead of
    // letting the cast wrap into a negative or bogus slide.
    const auto slices = static_cast<std::int32_t>(std::clamp<TimeNs>(
        gap > 0 ? gap / dt : 0, 0,
        std::numeric_limits<std::int32_t>::max()));
    if (slices > 0) {
      (void)s.slide(slices);
    } else {
      (void)s.refresh();
    }
  });
}

void SessionManager::ingest_round(TimeNs frontier) {
  seal_staged(frontier);
  advance_to_watermark(frontier);
}

void SessionManager::slide_all(std::int32_t slices) {
  if (slices < 0) {
    throw InvalidArgument("SessionManager::slide_all: negative slide");
  }
  // Sliding is itself a completeness promise: the caller asserts the data
  // under the slid-to windows has arrived, so the watermark follows the
  // furthest post-slide window end.
  TimeNs frontier = watermark_;
  for (const auto& s : sessions_) {
    const TimeGrid& w = s->window();
    frontier = std::max(frontier,
                        slide_target(w.end(), w.uniform_dt_ns(), slices));
  }
  seal_staged(frontier);
  run_advance_stage(
      [slices](SlidingWindowSession& s) { (void)s.slide(slices); });
}

void SessionManager::advance_to(TimeNs frontier) { ingest_round(frontier); }

void SessionManager::refresh_all() {
  TimeNs frontier = watermark_;
  for (const auto& s : sessions_) {
    frontier = std::max(frontier, s->window().end());
  }
  seal_staged(frontier);
  run_advance_stage([](SlidingWindowSession& s) { (void)s.refresh(); });
}

void SessionManager::audit() const {
  // Sharded mode runs the router audit (which audits every shard store
  // and the plan) in place of the single store's.
  if (sharded_ != nullptr) {
    sharded_->audit();
  } else {
    store_->audit();
  }
  const auto fail = [](const std::string& what) {
    throw ContractError("SessionManager::audit: " + what);
  };
  const TimeNs horizon = sharded_ != nullptr ? sharded_->evict_horizon()
                                             : store_->evict_horizon();
  if (!sessions_.empty() && horizon > min_window_begin()) {
    fail("eviction horizon " + std::to_string(horizon) +
         " is past the minimum live window begin " +
         std::to_string(min_window_begin()));
  }
  // Unsealed tails are legal only while the dirty accounting knows about
  // them: a staged event with no staged frontier would never reach the
  // sessions' note_external_ingest and stay invisible forever.
  const bool tails_sealed = sharded_ != nullptr ? sharded_->tails_sealed()
                                                : store_->tails_sealed();
  if (!tails_sealed && staged_min_ == kNoStagedEvents) {
    fail("store has unsealed tails but no staged dirty frontier");
  }
}

TimeNs SessionManager::min_window_begin() const noexcept {
  if (sessions_.empty()) {
    return sharded_ != nullptr ? sharded_->begin() : store_->begin();
  }
  TimeNs lo = std::numeric_limits<TimeNs>::max();
  for (const auto& s : sessions_) {
    lo = std::min(lo, s->window().begin());
  }
  return lo;
}

}  // namespace stagg
