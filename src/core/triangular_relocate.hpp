// In-place relocation of packed upper-triangular matrices for a changed
// time window — the shared primitive of MeasureCache::reshape and the
// aggregator's retained-DP-state splicing.
//
// The mapping: new cell (i, j) takes old cell (i + shift, j + shift);
// cells with no old counterpart (appended columns) are left with
// unspecified values and MUST be covered by the caller's dirty-column
// recomputation.  `buf` holds `node_count` consecutive packed triangles,
// each cell `lanes` consecutive elements.
//
// Safety of the in-place move orders:
//   * shift > 0 or a shrinking triangle: every destination run starts at
//     or before its source (new_off(i) <= old_off(i + shift), and node
//     bases only move left) and ends before the next run's source, so
//     ascending node/row memmoves never clobber unread data;
//   * a pure extension reverses the inequality (offsets only move right),
//     so it grows the buffer first and moves nodes and rows descending;
//   * the combined slide + extension case can move offsets either way and
//     falls back to a fresh buffer (the sliding-window session never
//     issues it).
// A constant-|T| slide — the hot production advance — allocates nothing,
// and a no-op reshape returns immediately.
#pragma once

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/interval.hpp"

namespace stagg {

template <typename T, typename Alloc>
void reshape_packed_triangles(std::vector<T, Alloc>& buf,
                              const TriangularIndex& old_tri,
                              const TriangularIndex& new_tri,
                              std::int32_t shift, std::size_t lanes,
                              std::size_t node_count) {
  if (buf.empty()) return;
  const std::int32_t old_t = old_tri.slices();
  const std::int32_t new_t = new_tri.slices();
  if (shift == 0 && new_t == old_t) return;  // identity
  if (shift > 0 && new_t > old_t) {
    // Combined slide + extension: relocate via a fresh buffer.
    std::vector<T, Alloc> next(node_count * new_tri.size() * lanes);
    for (std::size_t node = 0; node < node_count; ++node) {
      const T* src_node = buf.data() + node * old_tri.size() * lanes;
      T* dst_node = next.data() + node * new_tri.size() * lanes;
      for (SliceId i = 0; i < new_t; ++i) {
        const SliceId src_row = i + shift;
        if (src_row >= old_t) break;
        std::memcpy(dst_node + new_tri.row_offset(i) * lanes,
                    src_node + old_tri.row_offset(src_row) * lanes,
                    static_cast<std::size_t>(
                        std::min(new_t - i, old_t - src_row)) *
                        lanes * sizeof(T));
      }
    }
    buf = std::move(next);
    return;
  }
  if (new_t > old_t) {
    // Pure extension: grow, then relocate nodes and rows descending.
    buf.resize(node_count * new_tri.size() * lanes);
    for (std::size_t node = node_count; node-- > 0;) {
      const T* src_node = buf.data() + node * old_tri.size() * lanes;
      T* dst_node = buf.data() + node * new_tri.size() * lanes;
      for (SliceId i = old_t - 1; i >= 0; --i) {
        if (node == 0 && i == 0) break;  // first row of first node: offset 0
        std::memmove(dst_node + new_tri.row_offset(i) * lanes,
                     src_node + old_tri.row_offset(i) * lanes,
                     static_cast<std::size_t>(old_t - i) * lanes * sizeof(T));
      }
    }
    return;
  }
  // Slide and/or contraction: relocate nodes and rows ascending, shrink.
  for (std::size_t node = 0; node < node_count; ++node) {
    const T* src_node = buf.data() + node * old_tri.size() * lanes;
    T* dst_node = buf.data() + node * new_tri.size() * lanes;
    for (SliceId i = 0; i < new_t; ++i) {
      const SliceId src_row = i + shift;
      if (src_row >= old_t) break;
      if (node == 0 && i == 0 && shift == 0) continue;  // offset 0 already
      std::memmove(dst_node + new_tri.row_offset(i) * lanes,
                   src_node + old_tri.row_offset(src_row) * lanes,
                   static_cast<std::size_t>(
                       std::min(new_t - i, old_t - src_row)) *
                       lanes * sizeof(T));
    }
  }
  buf.resize(node_count * new_tri.size() * lanes);
}

}  // namespace stagg
