// Spatial-only aggregation (paper §III-D; the Viva treemap of ref [13]):
// optimal hierarchy-consistent partition of the resource set in O(|S|) by a
// depth-first search that keeps, on each branch, either the node aggregate
// or the union of its children's optima.
//
// Applied to the temporally-aggregated trace S x {T}, it is the other half
// of the Cartesian-product baseline of Fig. 3.c.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cube.hpp"
#include "hierarchy/hierarchy.hpp"
#include "metrics/information.hpp"

namespace stagg {

/// Optimal pIC antichain of hierarchy nodes over per-leaf weighted values.
class HierarchyAggregator {
 public:
  /// `leaf_values`: row-major |S| x |X| proportions w_x(s); the hierarchy
  /// is referenced, not owned.
  HierarchyAggregator(const Hierarchy* hierarchy,
                      std::vector<double> leaf_values,
                      std::int32_t state_count);

  /// Builds the temporally-aggregated trace S x {T} from a cube:
  /// w_x(s) = rho_x({s}, T_(0,|T|-1)).
  [[nodiscard]] static HierarchyAggregator temporally_aggregated(
      const DataCube& cube);

  struct Result {
    double p = 0.0;
    std::vector<NodeId> parts;  ///< antichain covering all leaves
    double optimal_pic = 0.0;
    AreaMeasures measures;
  };

  /// O(|S|) post-order sweep; ties prefer the aggregate (coarser cut).
  [[nodiscard]] Result run(double p) const;

  /// Gain/loss of aggregating the whole subtree of `node` into one part.
  [[nodiscard]] AreaMeasures node_measures(NodeId node) const;

 private:
  const Hierarchy* hier_;
  std::int32_t n_x_ = 0;
  // Per node, per state: {sum of w, sum of w log2 w} over subtree leaves.
  std::vector<double> sum_w_, sum_wlog_;

  [[nodiscard]] std::size_t nidx(NodeId n, StateId x) const noexcept {
    return static_cast<std::size_t>(n) * static_cast<std::size_t>(n_x_) +
           static_cast<std::size_t>(x);
  }
};

}  // namespace stagg
