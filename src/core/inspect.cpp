#include "core/inspect.hpp"

#include <sstream>

namespace stagg {

AreaDetail inspect_area(const DataCube& cube, const Area& area) {
  const Hierarchy& h = cube.hierarchy();
  const TimeGrid& grid = cube.model().grid();

  AreaDetail d;
  d.area = area;
  d.node_path = h.path(area.node);
  d.resources = h.node(area.node).leaf_count;
  d.begin_s = to_seconds(grid.slice_begin(area.time.i));
  d.end_s = to_seconds(grid.slice_end(area.time.j));
  d.proportions.reserve(static_cast<std::size_t>(cube.state_count()));
  for (StateId x = 0; x < cube.state_count(); ++x) {
    d.proportions.push_back(
        cube.aggregated_proportion(area.node, area.time.i, area.time.j, x));
  }
  const auto mode = cube.mode(area.node, area.time.i, area.time.j);
  d.mode = mode.state;
  d.mode_share = mode.proportion;
  d.alpha = mode.proportion_sum > 0.0 ? mode.proportion / mode.proportion_sum
                                      : 0.0;
  d.measures = cube.measures(area.node, area.time.i, area.time.j);
  return d;
}

std::vector<AreaDetail> inspect_partition(const DataCube& cube,
                                          const Partition& partition) {
  std::vector<AreaDetail> out;
  out.reserve(partition.size());
  for (const auto& a : partition.areas()) {
    out.push_back(inspect_area(cube, a));
  }
  return out;
}

std::optional<AreaDetail> area_at(const DataCube& cube,
                                  const Partition& partition, LeafId leaf,
                                  double time_s) {
  const Hierarchy& h = cube.hierarchy();
  const TimeGrid& grid = cube.model().grid();
  const TimeNs t = grid.begin() + seconds(time_s);
  if (t < grid.begin() || t >= grid.end()) return std::nullopt;
  if (leaf < 0 || static_cast<std::size_t>(leaf) >= h.leaf_count()) {
    return std::nullopt;
  }
  const SliceId slice = grid.slice_of(t);
  for (const auto& a : partition.areas()) {
    const auto& n = h.node(a.node);
    if (leaf >= n.first_leaf && leaf < n.first_leaf + n.leaf_count &&
        slice >= a.time.i && slice <= a.time.j) {
      return inspect_area(cube, a);
    }
  }
  return std::nullopt;
}

std::string format_area_detail(const DataCube& cube, const AreaDetail& d) {
  std::ostringstream os;
  os << d.node_path << " x [" << d.begin_s << "s, " << d.end_s << "s)  ("
     << d.resources << " resources, " << d.area.time.length()
     << " slices)\n";
  for (StateId x = 0; x < cube.state_count(); ++x) {
    const double rho = d.proportions[static_cast<std::size_t>(x)];
    if (rho <= 0.0) continue;
    os << "  " << cube.model().states().name(x) << ": "
       << static_cast<int>(rho * 1000.0) / 10.0 << "%"
       << (x == d.mode ? "  <- mode" : "") << '\n';
  }
  os << "  gain=" << d.measures.gain << " loss=" << d.measures.loss
     << " alpha=" << d.alpha << '\n';
  return os.str();
}

}  // namespace stagg
