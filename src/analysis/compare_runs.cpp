#include "analysis/compare_runs.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/phases.hpp"
#include "common/error.hpp"

namespace stagg {
namespace {

/// Cell -> mode state of the covering area.
std::vector<StateId> mode_paint(const DataCube& cube,
                                const AggregationResult& run) {
  const Hierarchy& h = cube.hierarchy();
  const std::int32_t n_t = cube.slice_count();
  std::vector<StateId> modes(h.leaf_count() * static_cast<std::size_t>(n_t),
                             kNoState);
  for (const auto& a : run.partition.areas()) {
    const auto mode = cube.mode(a.node, a.time.i, a.time.j);
    const auto& n = h.node(a.node);
    for (LeafId s = n.first_leaf; s < n.first_leaf + n.leaf_count; ++s) {
      for (SliceId t = a.time.i; t <= a.time.j; ++t) {
        modes[static_cast<std::size_t>(s) * n_t +
              static_cast<std::size_t>(t)] = mode.state;
      }
    }
  }
  return modes;
}

}  // namespace

RunComparison compare_runs(const DataCube& cube_a,
                           const AggregationResult& run_a,
                           const DataCube& cube_b,
                           const AggregationResult& run_b,
                           const CompareOptions& options) {
  const Hierarchy& h = cube_a.hierarchy();
  if (cube_b.hierarchy().leaf_count() != h.leaf_count() ||
      cube_b.slice_count() != cube_a.slice_count()) {
    throw DimensionError("compare_runs: runs have different dimensions");
  }
  const std::int32_t n_t = cube_a.slice_count();

  RunComparison out;
  out.structure =
      diff_partitions(h, n_t, run_a.partition, run_b.partition);

  // Mode agreement.
  const auto modes_a = mode_paint(cube_a, run_a);
  const auto modes_b = mode_paint(cube_b, run_b);
  std::size_t agree = 0;
  for (std::size_t k = 0; k < modes_a.size(); ++k) {
    if (modes_a[k] == modes_b[k]) ++agree;
  }
  out.mode_agreement =
      static_cast<double>(agree) / static_cast<double>(modes_a.size());

  // Divergent global boundaries.
  const auto votes_a = cut_votes(run_a, cube_a);
  const auto votes_b = cut_votes(run_b, cube_b);
  for (SliceId t = 1; t < n_t; ++t) {
    const bool ga = votes_a[static_cast<std::size_t>(t)] >= options.cut_quorum;
    const bool gb = votes_b[static_cast<std::size_t>(t)] >= options.cut_quorum;
    if (ga != gb) out.divergent_boundaries.push_back(t);
  }

  // Rows whose temporal structure changed (reuse the cell-level diff).
  for (const LeafId s : out.structure.differing_leaves) {
    out.changed_rows.push_back(h.path(h.leaf_node(s)));
  }
  return out;
}

std::string format_comparison(const RunComparison& c) {
  std::ostringstream os;
  os << "structure: " << c.structure.common_areas << " common areas, "
     << c.structure.only_in_a << " only in A, " << c.structure.only_in_b
     << " only in B (jaccard " << c.structure.area_jaccard << ")\n";
  os << "mode agreement: " << c.mode_agreement * 100.0 << "% of cells\n";
  os << "divergent global boundaries:";
  if (c.divergent_boundaries.empty()) {
    os << " none";
  } else {
    for (const SliceId t : c.divergent_boundaries) os << ' ' << t;
  }
  os << "\nchanged rows (" << c.changed_rows.size() << "):\n";
  const std::size_t show = std::min<std::size_t>(c.changed_rows.size(), 12);
  for (std::size_t k = 0; k < show; ++k) {
    os << "  " << c.changed_rows[k] << '\n';
  }
  if (show < c.changed_rows.size()) {
    os << "  ... (" << c.changed_rows.size() - show << " more)\n";
  }
  return os.str();
}

}  // namespace stagg
