// Phase detection on top of an aggregation result.
//
// The paper reads application phases off the overview (Fig. 1: init /
// transition / computation; Fig. 4: init / Allreduce / computation).  This
// module extracts them programmatically: a *global temporal cut* is a slice
// boundary where at least `quorum` of the resource rows switch areas; the
// stretches between global cuts are phases, labeled by their mode state.
#pragma once

#include <string>
#include <vector>

#include "core/aggregator.hpp"

namespace stagg {

/// One detected phase.
struct DetectedPhase {
  SliceId first_slice = 0;
  SliceId last_slice = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  StateId mode = kNoState;
  std::string mode_name;
  double mode_share = 0.0;  ///< aggregated proportion of the mode state
};

struct PhaseDetectionOptions {
  /// Fraction of leaf rows that must cut at a boundary to call it global.
  double quorum = 0.6;
};

/// Cut votes per slice boundary: result[t] = fraction of leaves whose area
/// changes between slices t-1 and t (index 0 unused, always 0).
[[nodiscard]] std::vector<double> cut_votes(const AggregationResult& result,
                                            const DataCube& cube);

/// Detects global phases.
[[nodiscard]] std::vector<DetectedPhase> detect_phases(
    const AggregationResult& result, const DataCube& cube,
    const PhaseDetectionOptions& options = {});

/// Formats phases as one line each ("0.0s-1.6s MPI_Init (98%)").
[[nodiscard]] std::string format_phases(const std::vector<DetectedPhase>& ps);

}  // namespace stagg
