// End-to-end analysis report: ties the pipeline together the way the
// paper's §V walks through a use case — trace statistics, chosen
// aggregation level, quality, detected phases and disrupted resources —
// rendered as markdown-ish text.
#pragma once

#include <string>

#include "analysis/disruption.hpp"
#include "analysis/phases.hpp"
#include "core/aggregator.hpp"
#include "trace/trace_stats.hpp"

namespace stagg {

struct AnalysisReport {
  TraceStats trace_stats;
  AggregationResult aggregation;
  std::vector<DetectedPhase> phases;
  std::vector<Disruption> disruptions;
};

struct ReportOptions {
  PhaseDetectionOptions phases;
  DisruptionOptions disruptions;
};

/// Runs phase + disruption analysis on an aggregation result.
[[nodiscard]] AnalysisReport analyze(Trace& trace,
                                     const AggregationResult& result,
                                     const DataCube& cube,
                                     const ReportOptions& options = {});

/// Renders the report as text.
[[nodiscard]] std::string format_report(const AnalysisReport& report);

}  // namespace stagg
