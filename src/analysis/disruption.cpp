#include "analysis/disruption.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace stagg {
namespace {

/// Set of slice boundaries (area starts, excluding 0) on one leaf's row.
std::set<SliceId> row_cuts(const Partition& partition, const Hierarchy& h,
                           LeafId leaf) {
  std::set<SliceId> cuts;
  for (const auto& a : partition.row_of_leaf(h, leaf)) {
    if (a.time.i > 0) cuts.insert(a.time.i);
  }
  return cuts;
}

}  // namespace

std::vector<Disruption> detect_disruptions(const AggregationResult& result,
                                           const DataCube& cube,
                                           const DisruptionOptions& options) {
  const Hierarchy& h = cube.hierarchy();
  const TimeGrid& grid = cube.model().grid();
  std::vector<Disruption> out;

  const std::int32_t depth = std::min(options.group_depth, h.max_depth());
  for (const NodeId group : h.nodes_at_depth(depth)) {
    const auto& g = h.node(group);
    if (g.leaf_count < 2) continue;

    // Count votes per boundary over the group's rows.
    std::vector<std::set<SliceId>> cuts;
    cuts.reserve(static_cast<std::size_t>(g.leaf_count));
    std::map<SliceId, std::int32_t> votes;
    for (LeafId s = g.first_leaf; s < g.first_leaf + g.leaf_count; ++s) {
      cuts.push_back(row_cuts(result.partition, h, s));
      for (SliceId c : cuts.back()) ++votes[c];
    }
    std::set<SliceId> majority;
    for (const auto& [c, n] : votes) {
      if (static_cast<double>(n) >=
          options.majority * static_cast<double>(g.leaf_count)) {
        majority.insert(c);
      }
    }

    for (LeafId s = g.first_leaf; s < g.first_leaf + g.leaf_count; ++s) {
      const auto& own = cuts[static_cast<std::size_t>(s - g.first_leaf)];
      std::vector<SliceId> deviating;
      std::set_symmetric_difference(own.begin(), own.end(), majority.begin(),
                                    majority.end(),
                                    std::back_inserter(deviating));
      if (deviating.empty()) continue;
      Disruption d;
      d.leaf = s;
      d.path = h.path(h.leaf_node(s));
      d.deviating_cuts = std::move(deviating);
      d.first_deviation_s =
          to_seconds(grid.slice_begin(d.deviating_cuts.front()));
      out.push_back(std::move(d));
    }
  }
  return out;
}

std::string format_disruptions(const std::vector<Disruption>& ds) {
  std::ostringstream os;
  for (const auto& d : ds) {
    os << "  " << d.path << "  deviates at " << d.first_deviation_s << "s (";
    for (std::size_t k = 0; k < d.deviating_cuts.size(); ++k) {
      if (k) os << ",";
      os << d.deviating_cuts[k];
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace stagg
