#include "analysis/report.hpp"

#include <sstream>

#include "metrics/quality.hpp"

namespace stagg {

AnalysisReport analyze(Trace& trace, const AggregationResult& result,
                       const DataCube& cube, const ReportOptions& options) {
  AnalysisReport report;
  report.trace_stats = compute_stats(trace);
  report.aggregation = result;
  report.phases = detect_phases(result, cube, options.phases);
  report.disruptions = detect_disruptions(result, cube, options.disruptions);
  return report;
}

std::string format_report(const AnalysisReport& report) {
  std::ostringstream os;
  os << "## Trace\n" << format_stats(report.trace_stats) << '\n';
  os << "## Aggregation (p = " << report.aggregation.p << ")\n"
     << format_quality(report.aggregation.quality) << "\n\n";
  os << "## Phases\n" << format_phases(report.phases) << '\n';
  os << "## Disrupted resources (" << report.disruptions.size() << ")\n"
     << format_disruptions(report.disruptions);
  return os.str();
}

}  // namespace stagg
