// Perturbed-resource identification (paper §V-A: "a detailed list of those
// who significantly are [impacted]").
//
// A resource is *disrupted* in a time window when its own temporal
// partition deviates from the majority partition of its sibling group: the
// perturbation of Fig. 1 appears as extra temporal cuts on exactly the 26
// affected rows.  The detector votes per slice boundary within each
// grouping node (machine or cluster), then reports resources whose cut set
// differs from the group majority, with the deviating windows.
#pragma once

#include <string>
#include <vector>

#include "core/aggregator.hpp"

namespace stagg {

/// One disrupted resource.
struct Disruption {
  LeafId leaf = -1;
  std::string path;
  /// Slice boundaries present on this row but not in the group majority
  /// (or vice versa).
  std::vector<SliceId> deviating_cuts;
  /// Time of the first deviating cut, in seconds.
  double first_deviation_s = 0.0;
};

struct DisruptionOptions {
  /// Depth of the grouping nodes whose rows are compared (e.g. 1 =
  /// clusters, 2 = machines for site/cluster/machine/core hierarchies).
  std::int32_t group_depth = 1;
  /// A boundary is "majority" when at least this fraction of the group's
  /// rows cut there.
  double majority = 0.5;
};

/// Finds resources whose temporal partitioning deviates from their group.
[[nodiscard]] std::vector<Disruption> detect_disruptions(
    const AggregationResult& result, const DataCube& cube,
    const DisruptionOptions& options = {});

/// Formats the list ("rennes/parapide/parapide-3/core1 deviates at 3.04s").
[[nodiscard]] std::string format_disruptions(const std::vector<Disruption>& d);

}  // namespace stagg
