// Vampir-style task profile (Table I row 7): clusters the most similar
// processes by the duration of the functions they execute, losing the
// temporal dimension in the process — the M1 failure the paper points out.
//
// Clustering is k-medoids (PAM-lite with deterministic farthest-first
// seeding) over per-resource state-duration vectors, with L2 distance —
// "a distance measure based on the duration of the functions executed by
// each process".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace stagg {

/// One cluster of similar processes.
struct ProfileCluster {
  std::vector<ResourceId> members;
  ResourceId medoid = -1;
  std::vector<double> mean_durations;  ///< per-state mean seconds
};

struct ProfileOptions {
  std::int32_t clusters = 4;
  std::int32_t max_iterations = 32;
  std::uint64_t seed = 5;
};

struct TaskProfile {
  std::vector<ProfileCluster> clusters;
  double total_distance = 0.0;  ///< sum of member-to-medoid distances
};

/// Builds the task profile of a trace.
[[nodiscard]] TaskProfile cluster_task_profile(Trace& trace,
                                               const ProfileOptions& o = {});

/// Formats the profile as a per-cluster bar-chart-ish text block.
[[nodiscard]] std::string format_profile(const TaskProfile& profile,
                                         const Trace& trace);

}  // namespace stagg
