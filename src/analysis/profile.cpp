#include "analysis/profile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trace/trace_stats.hpp"

namespace stagg {
namespace {

double l2(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace

TaskProfile cluster_task_profile(Trace& trace, const ProfileOptions& o) {
  trace.seal();
  const auto vectors = state_duration_vectors(trace);
  const auto n = static_cast<std::int32_t>(vectors.size());
  if (n == 0) throw InvalidArgument("cluster_task_profile: empty trace");
  const std::int32_t k = std::min(o.clusters, n);

  // Farthest-first seeding from a deterministic start.
  Rng rng(o.seed);
  std::vector<std::int32_t> medoids = {
      static_cast<std::int32_t>(rng.uniform_int(0, n - 1))};
  while (static_cast<std::int32_t>(medoids.size()) < k) {
    std::int32_t farthest = 0;
    double best = -1.0;
    for (std::int32_t i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (std::int32_t m : medoids) {
        nearest = std::min(nearest, l2(vectors[static_cast<std::size_t>(i)],
                                       vectors[static_cast<std::size_t>(m)]));
      }
      if (nearest > best) {
        best = nearest;
        farthest = i;
      }
    }
    medoids.push_back(farthest);
  }

  std::vector<std::int32_t> assign(static_cast<std::size_t>(n), 0);
  const auto reassign = [&] {
    double total = 0.0;
    for (std::int32_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::int32_t arg = 0;
      for (std::size_t c = 0; c < medoids.size(); ++c) {
        const double d = l2(vectors[static_cast<std::size_t>(i)],
                            vectors[static_cast<std::size_t>(medoids[c])]);
        if (d < best) {
          best = d;
          arg = static_cast<std::int32_t>(c);
        }
      }
      assign[static_cast<std::size_t>(i)] = arg;
      total += best;
    }
    return total;
  };

  double total = reassign();
  for (std::int32_t it = 0; it < o.max_iterations; ++it) {
    bool changed = false;
    // Medoid update: the member minimizing intra-cluster distance.
    for (std::size_t c = 0; c < medoids.size(); ++c) {
      double best_sum = std::numeric_limits<double>::infinity();
      std::int32_t best_m = medoids[c];
      for (std::int32_t i = 0; i < n; ++i) {
        if (assign[static_cast<std::size_t>(i)] !=
            static_cast<std::int32_t>(c)) {
          continue;
        }
        double sum = 0.0;
        for (std::int32_t j = 0; j < n; ++j) {
          if (assign[static_cast<std::size_t>(j)] ==
              static_cast<std::int32_t>(c)) {
            sum += l2(vectors[static_cast<std::size_t>(i)],
                      vectors[static_cast<std::size_t>(j)]);
          }
        }
        if (sum < best_sum) {
          best_sum = sum;
          best_m = i;
        }
      }
      if (best_m != medoids[c]) {
        medoids[c] = best_m;
        changed = true;
      }
    }
    if (!changed) break;
    total = reassign();
  }

  TaskProfile profile;
  profile.total_distance = total;
  profile.clusters.resize(medoids.size());
  for (std::size_t c = 0; c < medoids.size(); ++c) {
    profile.clusters[c].medoid = medoids[c];
  }
  const std::size_t n_states = trace.states().size();
  for (std::int32_t i = 0; i < n; ++i) {
    profile.clusters[static_cast<std::size_t>(assign[static_cast<std::size_t>(i)])]
        .members.push_back(i);
  }
  for (auto& cluster : profile.clusters) {
    cluster.mean_durations.assign(n_states, 0.0);
    for (ResourceId m : cluster.members) {
      for (std::size_t x = 0; x < n_states; ++x) {
        cluster.mean_durations[x] += vectors[static_cast<std::size_t>(m)][x];
      }
    }
    if (!cluster.members.empty()) {
      for (auto& v : cluster.mean_durations) {
        v /= static_cast<double>(cluster.members.size());
      }
    }
  }
  // Stable presentation order: biggest cluster first.
  std::sort(profile.clusters.begin(), profile.clusters.end(),
            [](const ProfileCluster& a, const ProfileCluster& b) {
              return a.members.size() > b.members.size();
            });
  return profile;
}

std::string format_profile(const TaskProfile& profile, const Trace& trace) {
  std::ostringstream os;
  for (std::size_t c = 0; c < profile.clusters.size(); ++c) {
    const auto& cluster = profile.clusters[c];
    os << "cluster " << c << " (" << cluster.members.size()
       << " processes):\n";
    for (std::size_t x = 0; x < cluster.mean_durations.size(); ++x) {
      const double v = cluster.mean_durations[x];
      if (v <= 0.0) continue;
      os << "  " << trace.states().name(static_cast<StateId>(x)) << ": ";
      const int bar = static_cast<int>(std::min(v * 10.0, 50.0));
      for (int b = 0; b < bar; ++b) os << '#';
      os << " " << v << "s\n";
    }
  }
  return os.str();
}

}  // namespace stagg
