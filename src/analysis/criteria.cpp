#include "analysis/criteria.hpp"

namespace stagg {

const char* to_symbol(CriterionMark m) noexcept {
  switch (m) {
    case CriterionMark::kNo: return " ";
    case CriterionMark::kTimeOnly: return "*";
    case CriterionMark::kSpaceOnly: return "o";
    case CriterionMark::kBoth: return ".";
  }
  return "?";
}

const char* to_string(Criterion c) noexcept {
  switch (c) {
    case Criterion::kG1EntityBudget: return "G1";
    case Criterion::kG2VisualSummary: return "G2";
    case Criterion::kG3VisualSimplicity: return "G3";
    case Criterion::kG4Discriminability: return "G4";
    case Criterion::kG5Fidelity: return "G5";
    case Criterion::kG6Interpretability: return "G6";
    case Criterion::kM1SpatiotemporalRepresentation: return "M1";
    case Criterion::kM2AggregationCoherence: return "M2";
  }
  return "?";
}

namespace {
using M = CriterionMark;
constexpr M kNo = M::kNo;
constexpr M kT = M::kTimeOnly;
constexpr M kS = M::kSpaceOnly;
constexpr M kB = M::kBoth;
}  // namespace

std::vector<TechniqueEvaluation> paper_table1() {
  // Marks transcribed from Table I of the paper.
  // Columns: G1 G2 G3 G4 G5 G6 M1 M2.
  return {
      {"Gantt Chart", "Pixel-guided (time), no aggregation (space)",
       "Vampir, Paraver",
       {kT, kB, kB, kNo, kNo, kNo, kB, kNo},
       true},
      {"Gantt Chart", "Visual aggregation (time), no aggregation (space)",
       "Paje, LTTng Eclipse Viewer",
       {kT, kNo, kB, kB, kB, kB, kB, kNo},
       false},
      {"Gantt Chart", "Time compression (time), hierarchical agg. (space)",
       "KPTrace Viewer",
       {kS, kNo, kB, kNo, kNo, kB, kB, kNo},
       false},
      {"Gantt Chart", "Time abstraction (time), no aggregation (space)",
       "Jumpshot",
       {kT, kB, kB, kB, kB, kB, kB, kNo},
       false},
      {"Timeline", "Pixel-guided (both)", "Vampir",
       {kB, kT, kB, kNo, kNo, kNo, kNo, kB},
       false},
      {"Timeline", "Information aggregation (both)", "Ocelotl",
       {kB, kB, kB, kB, kB, kB, kNo, kB},
       true},
      {"Task Profile", "Clustering (space), mean operation (time)", "Vampir",
       {kB, kB, kB, kB, kB, kB, kNo, kB},
       true},
      {"Treemap/Topology", "Hierarchical agg. (space), time integration",
       "Viva",
       {kB, kB, kB, kB, kB, kB, kNo, kB},
       true},
  };
}

CriterionMark measured_entity_budget(const MeasuredCriteria& m) {
  if (m.entity_budget == 0) return CriterionMark::kNo;
  const bool within = m.entities_drawn <= m.entity_budget;
  const bool legible = m.entities_subpixel == 0;
  return within && legible ? CriterionMark::kBoth : CriterionMark::kNo;
}

CriterionMark measured_m1(const MeasuredCriteria& m) {
  if (m.shows_time_axis && m.shows_space_axis) return CriterionMark::kBoth;
  if (m.shows_time_axis) return CriterionMark::kTimeOnly;
  if (m.shows_space_axis) return CriterionMark::kSpaceOnly;
  return CriterionMark::kNo;
}

CriterionMark measured_m2(const MeasuredCriteria& m) {
  return m.reduction_simultaneous && m.aggregates_carry_data
             ? CriterionMark::kBoth
             : CriterionMark::kNo;
}

}  // namespace stagg
