#include "analysis/phases.hpp"

#include <sstream>
#include <vector>

namespace stagg {

std::vector<double> cut_votes(const AggregationResult& result,
                              const DataCube& cube) {
  const Hierarchy& h = cube.hierarchy();
  const std::int32_t n_t = cube.slice_count();
  const std::size_t n_s = h.leaf_count();

  // owner[s][t]: area index covering the cell.
  std::vector<std::int32_t> owner(n_s * static_cast<std::size_t>(n_t), -1);
  const auto& areas = result.partition.areas();
  for (std::size_t k = 0; k < areas.size(); ++k) {
    const auto& n = h.node(areas[k].node);
    for (LeafId s = n.first_leaf; s < n.first_leaf + n.leaf_count; ++s) {
      for (SliceId t = areas[k].time.i; t <= areas[k].time.j; ++t) {
        owner[static_cast<std::size_t>(s) * n_t + static_cast<std::size_t>(t)] =
            static_cast<std::int32_t>(k);
      }
    }
  }

  std::vector<double> votes(static_cast<std::size_t>(n_t), 0.0);
  for (SliceId t = 1; t < n_t; ++t) {
    std::size_t switching = 0;
    for (std::size_t s = 0; s < n_s; ++s) {
      if (owner[s * static_cast<std::size_t>(n_t) + t] !=
          owner[s * static_cast<std::size_t>(n_t) + t - 1]) {
        ++switching;
      }
    }
    votes[static_cast<std::size_t>(t)] =
        static_cast<double>(switching) / static_cast<double>(n_s);
  }
  return votes;
}

std::vector<DetectedPhase> detect_phases(const AggregationResult& result,
                                         const DataCube& cube,
                                         const PhaseDetectionOptions& options) {
  const std::int32_t n_t = cube.slice_count();
  const auto votes = cut_votes(result, cube);

  std::vector<SliceId> boundaries = {0};
  for (SliceId t = 1; t < n_t; ++t) {
    if (votes[static_cast<std::size_t>(t)] >= options.quorum) {
      boundaries.push_back(t);
    }
  }
  boundaries.push_back(n_t);

  const TimeGrid& grid = cube.model().grid();
  std::vector<DetectedPhase> phases;
  for (std::size_t k = 0; k + 1 < boundaries.size(); ++k) {
    DetectedPhase ph;
    ph.first_slice = boundaries[k];
    ph.last_slice = boundaries[k + 1] - 1;
    ph.begin_s = to_seconds(grid.slice_begin(ph.first_slice));
    ph.end_s = to_seconds(grid.slice_end(ph.last_slice));
    const auto mode =
        cube.mode(cube.hierarchy().root(), ph.first_slice, ph.last_slice);
    ph.mode = mode.state;
    ph.mode_share = mode.proportion;
    ph.mode_name = mode.state == kNoState
                       ? "(idle)"
                       : cube.model().states().name(mode.state);
    phases.push_back(std::move(ph));
  }
  return phases;
}

std::string format_phases(const std::vector<DetectedPhase>& ps) {
  std::ostringstream os;
  for (const auto& p : ps) {
    char line[160];
    std::snprintf(line, sizeof line, "%7.2fs - %7.2fs  %-16s (%2.0f%%)\n",
                  p.begin_s, p.end_s, p.mode_name.c_str(),
                  p.mode_share * 100.0);
    os << line;
  }
  return os.str();
}

}  // namespace stagg
