// Elmqvist-Fekete overview criteria G1-G6 and the paper's spatiotemporal
// criteria M1-M2 (paper §II, Table I).
//
// Each visualization technique implemented in this library is evaluated
// against the criteria.  Structural criteria (does the representation show
// both dimensions? is the reduction simultaneous?) are properties of the
// technique and are encoded as such; the *measurable* criteria (G1 entity
// budget, G5 fidelity) are checked at runtime from actual render statistics
// by the Table I bench.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace stagg {

/// How a criterion is satisfied — Table I's legend: both dimensions (•),
/// only time (⋆), only space (◦), or not at all (blank).
enum class CriterionMark : std::uint8_t { kNo, kTimeOnly, kSpaceOnly, kBoth };

[[nodiscard]] const char* to_symbol(CriterionMark m) noexcept;

/// The eight columns of Table I.
enum class Criterion : std::uint8_t {
  kG1EntityBudget,
  kG2VisualSummary,
  kG3VisualSimplicity,
  kG4Discriminability,
  kG5Fidelity,
  kG6Interpretability,
  kM1SpatiotemporalRepresentation,
  kM2AggregationCoherence,
};
inline constexpr std::size_t kCriterionCount = 8;

[[nodiscard]] const char* to_string(Criterion c) noexcept;

/// One row of Table I.
struct TechniqueEvaluation {
  std::string visualization;  ///< "Gantt Chart", "Timeline", ...
  std::string technique;      ///< "Pixel-guided (time), none (space)"
  std::string tools;          ///< representative tools of the paper
  std::array<CriterionMark, kCriterionCount> marks{};
  bool implemented_here = false;  ///< backed by a renderer in this library
};

/// The eight rows of Table I, as the paper marks them.
[[nodiscard]] std::vector<TechniqueEvaluation> paper_table1();

/// Runtime checks the Table I bench feeds with real render statistics.
struct MeasuredCriteria {
  std::size_t entities_drawn = 0;
  std::size_t entity_budget = 0;
  std::size_t entities_subpixel = 0;
  bool shows_time_axis = false;
  bool shows_space_axis = false;
  bool aggregates_carry_data = false;
  bool reduction_simultaneous = false;
};

/// Derives G1/M1/M2 marks from measurements (the rest stay structural).
[[nodiscard]] CriterionMark measured_entity_budget(const MeasuredCriteria& m);
[[nodiscard]] CriterionMark measured_m1(const MeasuredCriteria& m);
[[nodiscard]] CriterionMark measured_m2(const MeasuredCriteria& m);

}  // namespace stagg
