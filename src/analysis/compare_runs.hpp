// Cross-run comparison — the paper's §V-A methodology: "By running several
// executions with different settings, this anomaly appears occasionally,
// and never at the same moment in the trace."
//
// Two aggregation results over the *same* platform and slice grid (e.g. a
// clean run vs a perturbed one, or two seeds of the same scenario) are
// aligned cell by cell: which rows changed their temporal structure, which
// slice boundaries appeared or disappeared, and how much the displayed mode
// states agree.
#pragma once

#include <string>
#include <vector>

#include "core/aggregator.hpp"
#include "core/partition_diff.hpp"

namespace stagg {

struct RunComparison {
  PartitionDiff structure;  ///< area-level diff of the two partitions
  /// Fraction of microscopic cells whose covering areas display the same
  /// mode state in both runs (the visual agreement of the two overviews).
  double mode_agreement = 0.0;
  /// Slice boundaries that are global cuts (>= quorum of rows) in exactly
  /// one of the runs — where the runs' dynamics diverge.
  std::vector<SliceId> divergent_boundaries;
  /// Rows whose temporal partitioning differs, by hierarchy path.
  std::vector<std::string> changed_rows;
};

struct CompareOptions {
  double cut_quorum = 0.5;  ///< row fraction for a boundary to be "global"
};

/// Compares two runs.  Both cubes must share the hierarchy (pointer
/// identity not required; leaf counts and slice counts must match) —
/// throws DimensionError otherwise.
[[nodiscard]] RunComparison compare_runs(const DataCube& cube_a,
                                         const AggregationResult& run_a,
                                         const DataCube& cube_b,
                                         const AggregationResult& run_b,
                                         const CompareOptions& options = {});

/// One-paragraph rendering of the comparison.
[[nodiscard]] std::string format_comparison(const RunComparison& c);

}  // namespace stagg
