#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace stagg {

TextTable::TextTable(std::vector<std::string> header) {
  if (!header.empty()) {
    rows_.push_back({std::move(header), false});
    rows_.push_back({{}, true});
    has_header_ = true;
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back({std::move(cells), false});
}

void TextTable::add_rule() { rows_.push_back({{}, true}); }

std::string TextTable::str() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (row.rule) continue;
    if (row.cells.size() > widths.size()) widths.resize(row.cells.size(), 0);
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  total = total > 2 ? total - 2 : total;

  std::ostringstream os;
  for (const auto& row : rows_) {
    if (row.rule) {
      os << std::string(total, '-') << '\n';
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      os << row.cells[c];
      if (c + 1 < row.cells.size()) {
        os << std::string(widths[c] - row.cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

}  // namespace stagg
