// Deterministic random number generation.
//
// Every synthetic workload is seeded so that traces, and therefore the whole
// experiment pipeline, are bit-reproducible across runs.  SplitMix64 is used
// to derive independent per-resource streams from a scenario seed, so
// generation can be parallelized over resources without changing results.
#pragma once

#include <cstdint>
#include <random>

namespace stagg {

/// SplitMix64: tiny, high-quality 64-bit mixer.  Used to derive stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derives the seed of an independent sub-stream (e.g. one per resource).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::uint64_t stream) noexcept {
  SplitMix64 mix(base ^ (0xA5A5A5A5DEADBEEFULL + stream * 0x9E3779B97F4A7C15ULL));
  // A couple of rounds decorrelates consecutive stream ids.
  SplitMix64 mix2(mix.next());
  return mix2.next();
}

/// Deterministic engine wrapper.  std::mt19937_64 seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(derive_seed(seed, 0)) {}
  Rng(std::uint64_t seed, std::uint64_t stream)
      : engine_(derive_seed(seed, stream)) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential with the given mean (= 1/lambda).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double probability) {
    return std::bernoulli_distribution(probability)(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace stagg
