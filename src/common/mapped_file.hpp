// Read-only memory-mapped file regions (the storage-backend primitive of
// the trace layer's on-disk chunk spill).
//
// A MappedRegion exposes the bytes [offset, offset + size) of a file as a
// stable read-only pointer.  On POSIX it is backed by mmap: the kernel
// pages the bytes in on first touch and may reclaim them under memory
// pressure, so a mapped region costs file-cache pages, not anonymous heap
// — the property the TraceStore spill budget counts on.  The mapping
// survives later truncation-free appends to the file and even unlinking
// (POSIX keeps mapped pages alive), which is what lets an outstanding
// TraceView stream a spilled chunk after the store has moved on.
//
// On platforms without mmap the region degrades to a heap copy of the
// bytes (same API and lifetime semantics, no paging benefit);
// heap_fallback() reports which backend is active so accounting can stay
// honest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace stagg {

/// Paging advice a reader can hand to the kernel for a mapped region.
/// Purely a performance hint — honoring it (or supporting it at all) is
/// optional, so callers never depend on it for correctness.
enum class MapAdvice : std::uint8_t {
  kSequential,  ///< Pages will be read front-to-back (aggressive readahead).
  kWillNeed,    ///< Pages are about to be read (prefetch now).
  kDontNeed,    ///< Pages are cold (reclaim them first).
};

class MappedRegion {
 public:
  /// Maps [offset, offset + size) of `path` read-only.  Throws IoError on
  /// open/map failure or when the range reaches past the end of the file
  /// (the error names the offending offset).  `size` must be non-zero.
  [[nodiscard]] static std::shared_ptr<const MappedRegion> map(
      const std::string& path, std::uint64_t offset, std::size_t size);

  /// Maps the whole file read-only.  Throws IoError on failure or on an
  /// empty file.
  [[nodiscard]] static std::shared_ptr<const MappedRegion> map_file(
      const std::string& path);

  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;
  ~MappedRegion();

  /// First byte of the requested range (valid for size() bytes).
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// True when mmap was unavailable and the bytes live in an owned heap
  /// buffer instead of file-backed pages.
  [[nodiscard]] bool heap_fallback() const noexcept {
    return map_base_ == nullptr;
  }

  /// Forwards `advice` to madvise over the whole mapping.  Best-effort:
  /// a no-op on the heap fallback and on platforms without madvise, and
  /// errors are ignored (advice never affects correctness).
  void advise(MapAdvice advice) const noexcept;

 private:
  MappedRegion() = default;

  /// Requested range inside the mapping (or the heap buffer).
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  /// mmap bookkeeping: the page-aligned base actually mapped, nullptr when
  /// the heap fallback is active.
  void* map_base_ = nullptr;
  std::size_t map_size_ = 0;
  /// Heap fallback storage.
  std::unique_ptr<std::uint8_t[]> heap_;
};

}  // namespace stagg
