#include "common/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

namespace stagg {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_blocked(
    ThreadPool& pool, std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  if (n <= grain || pool.size() <= 1) {
    body(0, n);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve((n + grain - 1) / grain);
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(n, begin + grain);
    futures.push_back(pool.submit([&body, begin, end] { body(begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    // Help drain the queue while waiting: nested parallel_for calls (e.g.
    // per-session DP waves under a SessionManager advance) would otherwise
    // deadlock once every worker blocks on futures of tasks still queued.
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!pool.try_run_one()) {
        f.wait_for(std::chrono::microseconds(200));
      }
    }
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for_blocked(ThreadPool::shared(), n, grain,
                       [&body](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) body(i);
                       });
}

}  // namespace stagg
