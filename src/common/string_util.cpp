#include "common/string_util.hpp"

#include <charconv>
#include <cstdio>

#include "common/error.hpp"

namespace stagg {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string with_thousands(long long v) {
  const bool neg = v < 0;
  unsigned long long u = neg ? -static_cast<unsigned long long>(v) : v;
  std::string digits = std::to_string(u);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return {out.rbegin(), out.rend()};
}

std::string format_bytes(unsigned long long bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1000.0 && u < 4) {
    v /= 1000.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof buf, "%llu B", bytes);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, units[u]);
  }
  return buf;
}

void require_field_safe(std::string_view value, std::string_view what) {
  if (value.find_first_of(",\n\r") != std::string_view::npos) {
    throw TraceFormatError(std::string(what) + " '" + std::string(value) +
                           "' contains a comma or line break; "
                           "comma-separated trace formats cannot represent "
                           "it — rename the " + std::string(what));
  }
}

double parse_double(std::string_view s, std::string_view context) {
  s = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw TraceFormatError("cannot parse number '" + std::string(s) + "' in " +
                           std::string(context));
  }
  return value;
}

long long parse_int(std::string_view s, std::string_view context) {
  s = trim(s);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw TraceFormatError("cannot parse integer '" + std::string(s) +
                           "' in " + std::string(context));
  }
  return value;
}

}  // namespace stagg
