// Machine and build provenance for BENCH_*.json emitters.
//
// Every tracked benchmark bar (incremental >= 5x, shard >= 1.5x, the
// bench_simd kernel bars, ...) is only meaningful relative to the machine
// and build that produced it, so every emitter stamps its JSON with the
// same provenance triple: hardware thread count, the compiled SIMD
// dispatch level (common/simd.hpp — "scalar" on STAGG_SIMD=OFF builds,
// which is how CI tells a waived bar from a missed one), and the
// compiler.  One helper keeps the key names identical across files.
#pragma once

#include <string>

namespace stagg {

struct BenchInfo {
  unsigned hardware_threads = 1;
  const char* simd_level = "scalar";  ///< simd::level_name()
  std::string compiler;               ///< e.g. "gcc 12.2.0"
};

[[nodiscard]] BenchInfo bench_info();

/// The provenance triple as JSON member lines, each `indent` spaces deep
/// and comma-terminated — splice directly after the emitter's opening
/// `"bench"` line:
///   "hardware_threads": 4,
///   "simd_level": "avx2",
///   "compiler": "gcc 12.2.0",
[[nodiscard]] std::string bench_info_json(int indent = 2);

}  // namespace stagg
