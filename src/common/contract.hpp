// Contract and audit macros — the machine-checked invariant layer.
//
// Three tiers, ordered by cost and by when they run:
//
//   STAGG_REQUIRE(cond, msg)  Always on.  API-boundary precondition; throws
//                             ContractError naming the condition, file and
//                             line.  Use where a violated precondition would
//                             otherwise corrupt state silently.
//   STAGG_ASSERT(cond, msg)   Audit builds only (-DSTAGG_AUDIT=ON).  Cheap
//                             internal invariant checks on hot paths;
//                             compiles to nothing in default builds.
//   STAGG_AUDIT(expr)         Audit builds only.  Evaluates `expr` — almost
//                             always a call to a subsystem's audit() method
//                             at a stage boundary (post-seal, post-spill,
//                             post-advance, ...).  Audit methods walk whole
//                             structures (O(data) work) and throw
//                             ContractError on the first violated invariant,
//                             so they live behind the same switch.
//
// The audit() methods this layer gates (TraceStore, MeasureCache, DataCube,
// SessionManager, IngestPipeline) re-derive the structural invariants the
// bit-identity oracles rely on — sorted chunk columns, exact fences,
// monotone watermarks, triangle/cube shape agreement — from scratch, so a
// corrupted structure fails loudly at the boundary where it first exists
// instead of folding garbage three subsystems later.
//
// CI runs the fast test suite with -DSTAGG_AUDIT=ON on every push; the
// default build keeps all of this compiled out so tracked benchmarks are
// unaffected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

#include "common/error.hpp"

namespace stagg {

/// A machine-checked invariant did not hold.  Distinct from InvalidArgument
/// (caller error at an API boundary): a ContractError from an audit means
/// the *library's* state is inconsistent — the right reaction is to stop
/// trusting the structure, not to retry with different arguments.
class ContractError : public Error {
 public:
  explicit ContractError(const std::string& what)
      : Error("contract violation: " + what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line,
                                       const std::string& msg) {
  throw ContractError(std::string(kind) + " `" + cond + "` failed at " +
                      file + ":" + std::to_string(line) + ": " + msg);
}
[[noreturn]] inline void narrow_fail() {
  throw ContractError("narrow<T>: value not representable in target type");
}
}  // namespace detail

// --- Checked narrowing ------------------------------------------------------
//
// The codec/decoder encode paths are forbidden (by tools/stagg_lint.py) from
// narrowing with bare static_cast: every lossy integer conversion in an
// on-disk format must either be value-preserving (narrow<T>) or a
// *documented* truncation (wrap_u8).  In audit builds narrow<T> verifies the
// round-trip; in default builds both compile to the bare cast.

/// Value-preserving narrowing conversion: the value must be representable in
/// `To`.  Audit builds verify and throw ContractError on loss; default
/// builds are a bare static_cast (zero cost).
template <class To, class From>
[[nodiscard]] constexpr To narrow(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "narrow<T> is for integer conversions");
  const To out = static_cast<To>(v);
#ifdef STAGG_AUDIT_ENABLED
  bool ok = static_cast<From>(out) == v;
  // A modular round-trip can still flip sign (uint64 max -> int64 -1).
  if constexpr (std::is_signed_v<From> && !std::is_signed_v<To>) {
    ok = ok && v >= From{};
  } else if constexpr (!std::is_signed_v<From> && std::is_signed_v<To>) {
    ok = ok && out >= To{};
  }
  if (!ok) detail::narrow_fail();
#endif
  return out;
}

/// Documented truncation to the low 8 bits (varint bytes, bit-pack
/// accumulator flushes): wrap-around is the *intended* semantics.
template <class From>
[[nodiscard]] constexpr std::uint8_t wrap_u8(From v) noexcept {
  static_assert(std::is_integral_v<From>, "wrap_u8 is for integer values");
  return static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) & 0xffU);
}

}  // namespace stagg

// Always-on precondition.  The condition is evaluated exactly once.
#define STAGG_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::stagg::detail::contract_fail("requirement", #cond, __FILE__,      \
                                     __LINE__, (msg));                    \
    }                                                                     \
  } while (false)

#ifdef STAGG_AUDIT_ENABLED

#define STAGG_ASSERT(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::stagg::detail::contract_fail("assertion", #cond, __FILE__,        \
                                     __LINE__, (msg));                    \
    }                                                                     \
  } while (false)

/// Runs a structural audit at a stage boundary (audit builds only).
#define STAGG_AUDIT(expr) \
  do {                    \
    (expr);               \
  } while (false)

namespace stagg {
/// True in binaries compiled with -DSTAGG_AUDIT=ON; lets tests assert the
/// audit layer is actually active instead of silently compiled out.
inline constexpr bool kAuditEnabled = true;
}  // namespace stagg

#else  // !STAGG_AUDIT_ENABLED

#define STAGG_ASSERT(cond, msg) \
  do {                          \
  } while (false)

#define STAGG_AUDIT(expr) \
  do {                    \
  } while (false)

namespace stagg {
inline constexpr bool kAuditEnabled = false;
}  // namespace stagg

#endif  // STAGG_AUDIT_ENABLED
