// ASCII table printer for the bench harness.
//
// Every Table/Figure bench prints the paper's rows next to the measured
// rows; this helper keeps alignment consistent.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stagg {

/// Column-aligned ASCII table.  Cells are strings; the first added row can be
/// declared a header, which gets an underline rule.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header = {});

  /// Appends a data row.  Rows may have fewer cells than the widest row.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal rule.
  void add_rule();

  /// Renders with two-space column padding.
  [[nodiscard]] std::string str() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<Row> rows_;
  bool has_header_ = false;
};

}  // namespace stagg
