#include "common/mapped_file.hpp"

#include <cstdio>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define STAGG_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define STAGG_HAVE_MMAP 0
#endif

namespace stagg {

namespace {

[[noreturn]] void throw_range_error(const std::string& path,
                                    std::uint64_t offset, std::size_t size,
                                    std::uint64_t file_size) {
  throw IoError("mapped range [" + std::to_string(offset) + ", " +
                std::to_string(offset + size) + ") reaches past the end of '" +
                path + "' (" + std::to_string(file_size) + " bytes)");
}

}  // namespace

std::shared_ptr<const MappedRegion> MappedRegion::map(const std::string& path,
                                                      std::uint64_t offset,
                                                      std::size_t size) {
  if (size == 0) throw IoError("cannot map an empty range of '" + path + "'");
  // make_shared needs a public constructor; the region is immutable after
  // this function, so a bare new behind shared_ptr is fine.
  std::shared_ptr<MappedRegion> region(new MappedRegion());
#if STAGG_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open '" + path + "' for mapping");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError("fstat failed on '" + path + "'");
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  if (offset + size > file_size) {
    ::close(fd);
    throw_range_error(path, offset, size, file_size);
  }
  // mmap offsets must be page-aligned: map from the page floor and point
  // data() at the requested byte (the slack is at most one page).
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t base = offset - offset % page;
  const std::size_t map_size = static_cast<std::size_t>(offset - base) + size;
  void* mapped = ::mmap(nullptr, map_size, PROT_READ, MAP_SHARED, fd,
                        static_cast<off_t>(base));
  ::close(fd);  // the mapping keeps the file alive on its own
  if (mapped == MAP_FAILED) {
    throw IoError("mmap failed on '" + path + "' at offset " +
                  std::to_string(offset));
  }
  region->map_base_ = mapped;
  region->map_size_ = map_size;
  region->data_ =
      static_cast<const std::uint8_t*>(mapped) + (offset - base);
  region->size_ = size;
#else
  // Heap fallback: read the range into an owned buffer.  Same lifetime
  // semantics, no paging benefit (heap_fallback() reports this).
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("cannot open '" + path + "' for mapping");
  std::fseek(f, 0, SEEK_END);
  const auto file_size = static_cast<std::uint64_t>(std::ftell(f));
  if (offset + size > file_size) {
    std::fclose(f);
    throw_range_error(path, offset, size, file_size);
  }
  auto buf = std::make_unique<std::uint8_t[]>(size);
  std::fseek(f, static_cast<long>(offset), SEEK_SET);
  const std::size_t got = std::fread(buf.get(), 1, size, f);
  std::fclose(f);
  if (got != size) {
    throw IoError("short read mapping '" + path + "' at offset " +
                  std::to_string(offset));
  }
  region->heap_ = std::move(buf);
  region->data_ = region->heap_.get();
  region->size_ = size;
#endif
  return region;
}

std::shared_ptr<const MappedRegion> MappedRegion::map_file(
    const std::string& path) {
  std::uint64_t file_size = 0;
#if STAGG_HAVE_MMAP
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    throw IoError("cannot stat '" + path + "'");
  }
  file_size = static_cast<std::uint64_t>(st.st_size);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("cannot open '" + path + "'");
  std::fseek(f, 0, SEEK_END);
  file_size = static_cast<std::uint64_t>(std::ftell(f));
  std::fclose(f);
#endif
  if (file_size == 0) throw IoError("cannot map empty file '" + path + "'");
  return map(path, 0, static_cast<std::size_t>(file_size));
}

void MappedRegion::advise(MapAdvice advice) const noexcept {
#if STAGG_HAVE_MMAP
  if (map_base_ == nullptr) return;
  int flag = MADV_NORMAL;
  switch (advice) {
    case MapAdvice::kSequential:
      flag = MADV_SEQUENTIAL;
      break;
    case MapAdvice::kWillNeed:
      flag = MADV_WILLNEED;
      break;
    case MapAdvice::kDontNeed:
      flag = MADV_DONTNEED;
      break;
  }
  // Best-effort: advice may legitimately fail (e.g. locked pages) and the
  // mapping stays fully readable either way.
  (void)::madvise(map_base_, map_size_, flag);
#else
  (void)advice;
#endif
}

MappedRegion::~MappedRegion() {
#if STAGG_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_size_);
#endif
}

}  // namespace stagg
