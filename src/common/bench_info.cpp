#include "common/bench_info.hpp"

#include <algorithm>
#include <thread>

#include "common/simd.hpp"

namespace stagg {

namespace {

std::string compiler_string() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#elif defined(_MSC_VER)
  return "msvc " + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

}  // namespace

BenchInfo bench_info() {
  BenchInfo info;
  info.hardware_threads = std::max(1u, std::thread::hardware_concurrency());
  info.simd_level = simd::level_name();
  info.compiler = compiler_string();
  return info;
}

std::string bench_info_json(int indent) {
  const BenchInfo info = bench_info();
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  return pad + "\"hardware_threads\": " +
         std::to_string(info.hardware_threads) + ",\n" + pad +
         "\"simd_level\": \"" + info.simd_level + "\",\n" + pad +
         "\"compiler\": \"" + info.compiler + "\",\n";
}

}  // namespace stagg
