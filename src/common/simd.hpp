// Portable fixed-width SIMD wrappers — the project's single vector seam.
//
// Design rules (see README "Performance layers"):
//   * Fixed widths, not native widths: f64x4 / i64x4 / i32x4 / i32x8 /
//     u8x32.  On AVX2 each maps to one register; on SSE2 and NEON to two;
//     with STAGG_SIMD=OFF (or on unknown ISAs) to plain scalar loops.  A
//     kernel written against these types has exactly one shape everywhere.
//   * The scalar fallback (namespace simd::sc) is ALWAYS compiled and IS
//     the oracle: every intrinsic-backed operation is elementwise and must
//     produce bit-identical results to its sc twin — tests/test_simd.cpp
//     pins this with randomized inputs at every width and alignment.
//     Consequently kernels may only vectorize ACROSS independent lanes /
//     columns / states; nothing here reorders a floating-point reduction
//     chain, and no fused-multiply-add is ever emitted (the build also
//     sets -ffp-contract=off so scalar twins cannot be contracted either).
//   * Selection is compile-time only (STAGG_SIMD CMake option + `#if`
//     dispatch) — no runtime CPUID, no function multiversioning.
//   * Raw _mm_* / vld1q_* intrinsics may appear ONLY in this header
//     (enforced by tools/stagg_lint.py rule `raw-intrinsic`); everything
//     else goes through the wrappers.
//
// All loads and stores are unaligned-safe.  The 64-byte AlignedVec below
// is what the hot-path owners (DP arena, cube, measure cache) allocate
// with, so vector accesses in practice never split a cache line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

#if defined(STAGG_SIMD_FORCE_SCALAR)
#define STAGG_SIMD_LEVEL 0
#elif defined(__AVX2__)
#define STAGG_SIMD_LEVEL 3
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define STAGG_SIMD_LEVEL 2
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define STAGG_SIMD_LEVEL 1
#include <arm_neon.h>
#else
#define STAGG_SIMD_LEVEL 0
#endif

namespace stagg::simd {

/// True when the active family is intrinsic-backed; false when the scalar
/// fallback is the active family (STAGG_SIMD=OFF or an unknown ISA).
inline constexpr bool kEnabled = STAGG_SIMD_LEVEL != 0;

/// Compile-time ISA name for bench/JSON metadata ("avx2", "sse2", "neon",
/// "scalar").
[[nodiscard]] constexpr const char* level_name() noexcept {
#if STAGG_SIMD_LEVEL == 3
  return "avx2";
#elif STAGG_SIMD_LEVEL == 2
  return "sse2";
#elif STAGG_SIMD_LEVEL == 1
  return "neon";
#else
  return "scalar";
#endif
}

// ---------------------------------------------------------------------------
// 64-byte aligned storage for hot-path buffers.
// ---------------------------------------------------------------------------

/// Minimal C++17 allocator returning 64-byte-aligned blocks: one full
/// cache line / AVX-512 lane, so no f64x4/i64x4 access into a pooled DP,
/// cube or cache buffer ever splits a line.
template <class T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  AlignedAllocator() noexcept = default;
  template <class U>
  explicit constexpr AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlign);
  }

  template <class U>
  [[nodiscard]] bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage — drop-in for the pooled DP
/// arena, the DataCube planes and the MeasureCache triangle.
template <class T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

// ---------------------------------------------------------------------------
// Scalar family (always compiled; the equivalence oracle).
// ---------------------------------------------------------------------------

namespace sc {

struct f64x4 {
  double v[4];

  [[nodiscard]] static f64x4 load(const double* p) noexcept {
    f64x4 r;
    std::memcpy(r.v, p, sizeof r.v);
    return r;
  }
  [[nodiscard]] static f64x4 broadcast(double x) noexcept {
    return {{x, x, x, x}};
  }
  void store(double* p) const noexcept { std::memcpy(p, v, sizeof v); }

  [[nodiscard]] friend f64x4 operator+(f64x4 a, f64x4 b) noexcept {
    for (int i = 0; i < 4; ++i) a.v[i] += b.v[i];
    return a;
  }
  [[nodiscard]] friend f64x4 operator-(f64x4 a, f64x4 b) noexcept {
    for (int i = 0; i < 4; ++i) a.v[i] -= b.v[i];
    return a;
  }
  [[nodiscard]] friend f64x4 operator*(f64x4 a, f64x4 b) noexcept {
    for (int i = 0; i < 4; ++i) a.v[i] *= b.v[i];
    return a;
  }
  [[nodiscard]] friend f64x4 operator/(f64x4 a, f64x4 b) noexcept {
    for (int i = 0; i < 4; ++i) a.v[i] /= b.v[i];
    return a;
  }
  /// Bit w set when lane w satisfies a >= b (false for NaN, like `>=`).
  [[nodiscard]] int ge_mask(f64x4 b) const noexcept {
    int m = 0;
    for (int i = 0; i < 4; ++i) m |= static_cast<int>(v[i] >= b.v[i]) << i;
    return m;
  }
};

struct i64x4 {
  std::uint64_t v[4];

  [[nodiscard]] static i64x4 load(const std::uint64_t* p) noexcept {
    i64x4 r;
    std::memcpy(r.v, p, sizeof r.v);
    return r;
  }
  [[nodiscard]] static i64x4 broadcast(std::uint64_t x) noexcept {
    return {{x, x, x, x}};
  }
  void store(std::uint64_t* p) const noexcept { std::memcpy(p, v, sizeof v); }

  [[nodiscard]] friend i64x4 operator+(i64x4 a, i64x4 b) noexcept {
    for (int i = 0; i < 4; ++i) a.v[i] += b.v[i];
    return a;
  }
  [[nodiscard]] friend i64x4 operator-(i64x4 a, i64x4 b) noexcept {
    for (int i = 0; i < 4; ++i) a.v[i] -= b.v[i];
    return a;
  }
  [[nodiscard]] friend i64x4 operator^(i64x4 a, i64x4 b) noexcept {
    for (int i = 0; i < 4; ++i) a.v[i] ^= b.v[i];
    return a;
  }
  template <int N>
  [[nodiscard]] i64x4 shl() const noexcept {
    i64x4 r = *this;
    for (auto& x : r.v) x <<= N;
    return r;
  }
  template <int N>
  [[nodiscard]] i64x4 shr() const noexcept {
    i64x4 r = *this;
    for (auto& x : r.v) x >>= N;
    return r;
  }
  /// Per-lane all-ones when the lane is negative as int64 (an arithmetic
  /// shift right by 63) — the zigzag sign mask.
  [[nodiscard]] i64x4 sign_mask() const noexcept {
    i64x4 r;
    for (int i = 0; i < 4; ++i) {
      r.v[i] = static_cast<std::int64_t>(v[i]) < 0 ? ~std::uint64_t{0} : 0;
    }
    return r;
  }
  /// Per-lane signed min/max (exact for integers; used by fence scans
  /// where order is irrelevant).
  [[nodiscard]] i64x4 min_s(i64x4 b) const noexcept {
    i64x4 r;
    for (int i = 0; i < 4; ++i) {
      r.v[i] = static_cast<std::int64_t>(v[i]) <
                       static_cast<std::int64_t>(b.v[i])
                   ? v[i]
                   : b.v[i];
    }
    return r;
  }
  [[nodiscard]] i64x4 max_s(i64x4 b) const noexcept {
    i64x4 r;
    for (int i = 0; i < 4; ++i) {
      r.v[i] = static_cast<std::int64_t>(v[i]) >
                       static_cast<std::int64_t>(b.v[i])
                   ? v[i]
                   : b.v[i];
    }
    return r;
  }
  /// Bit w set when lane w of a equals lane w of b.
  [[nodiscard]] int eq_mask(i64x4 b) const noexcept {
    int m = 0;
    for (int i = 0; i < 4; ++i) m |= static_cast<int>(v[i] == b.v[i]) << i;
    return m;
  }
};

struct i32x4 {
  std::int32_t v[4];

  [[nodiscard]] static i32x4 load(const std::int32_t* p) noexcept {
    i32x4 r;
    std::memcpy(r.v, p, sizeof r.v);
    return r;
  }
  [[nodiscard]] static i32x4 broadcast(std::int32_t x) noexcept {
    return {{x, x, x, x}};
  }
  void store(std::int32_t* p) const noexcept { std::memcpy(p, v, sizeof v); }

  // Wrapping two's-complement arithmetic via uint32_t, like the hardware
  // paddd lanes — plain int math would be UB on overflow.
  [[nodiscard]] friend i32x4 operator+(i32x4 a, i32x4 b) noexcept {
    for (int i = 0; i < 4; ++i) {
      a.v[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[i]) +
                                         static_cast<std::uint32_t>(b.v[i]));
    }
    return a;
  }
};

struct i32x8 {
  std::int32_t v[8];

  [[nodiscard]] static i32x8 load(const std::int32_t* p) noexcept {
    i32x8 r;
    std::memcpy(r.v, p, sizeof r.v);
    return r;
  }
  [[nodiscard]] static i32x8 broadcast(std::int32_t x) noexcept {
    i32x8 r;
    for (auto& e : r.v) e = x;
    return r;
  }
  void store(std::int32_t* p) const noexcept { std::memcpy(p, v, sizeof v); }

  // Wrapping two's-complement arithmetic via uint32_t, like the hardware
  // paddd/psubd lanes — plain int math would be UB on overflow.
  [[nodiscard]] friend i32x8 operator+(i32x8 a, i32x8 b) noexcept {
    for (int i = 0; i < 8; ++i) {
      a.v[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[i]) +
                                         static_cast<std::uint32_t>(b.v[i]));
    }
    return a;
  }
  [[nodiscard]] friend i32x8 operator-(i32x8 a, i32x8 b) noexcept {
    for (int i = 0; i < 8; ++i) {
      a.v[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[i]) -
                                         static_cast<std::uint32_t>(b.v[i]));
    }
    return a;
  }
  /// Per-lane all-ones (-1) when a > b signed — the counting-compare mask
  /// (subtracting it increments a counter lane).
  [[nodiscard]] i32x8 gt_mask(i32x8 b) const noexcept {
    i32x8 r;
    for (int i = 0; i < 8; ++i) r.v[i] = v[i] > b.v[i] ? -1 : 0;
    return r;
  }
  /// Bit w set when lane w of a equals lane w of b.
  [[nodiscard]] int eq_mask(i32x8 b) const noexcept {
    int m = 0;
    for (int i = 0; i < 8; ++i) m |= static_cast<int>(v[i] == b.v[i]) << i;
    return m;
  }
};

struct u8x32 {
  std::uint8_t v[32];

  [[nodiscard]] static u8x32 load(const std::uint8_t* p) noexcept {
    u8x32 r;
    std::memcpy(r.v, p, sizeof r.v);
    return r;
  }
  [[nodiscard]] static u8x32 broadcast(std::uint8_t x) noexcept {
    u8x32 r;
    for (auto& e : r.v) e = x;
    return r;
  }
  void store(std::uint8_t* p) const noexcept { std::memcpy(p, v, sizeof v); }

  /// Bit k set when byte k of a equals byte k of b.
  [[nodiscard]] std::uint32_t eq_mask(u8x32 b) const noexcept {
    std::uint32_t m = 0;
    for (int i = 0; i < 32; ++i) {
      m |= static_cast<std::uint32_t>(v[i] == b.v[i]) << i;
    }
    return m;
  }
};

}  // namespace sc

// ---------------------------------------------------------------------------
// AVX2 family: one ymm register per type.
// ---------------------------------------------------------------------------

#if STAGG_SIMD_LEVEL == 3

struct f64x4 {
  __m256d v;

  [[nodiscard]] static f64x4 load(const double* p) noexcept {
    return {_mm256_loadu_pd(p)};
  }
  [[nodiscard]] static f64x4 broadcast(double x) noexcept {
    return {_mm256_set1_pd(x)};
  }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }

  [[nodiscard]] friend f64x4 operator+(f64x4 a, f64x4 b) noexcept {
    return {_mm256_add_pd(a.v, b.v)};
  }
  [[nodiscard]] friend f64x4 operator-(f64x4 a, f64x4 b) noexcept {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  [[nodiscard]] friend f64x4 operator*(f64x4 a, f64x4 b) noexcept {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  [[nodiscard]] friend f64x4 operator/(f64x4 a, f64x4 b) noexcept {
    return {_mm256_div_pd(a.v, b.v)};
  }
  [[nodiscard]] int ge_mask(f64x4 b) const noexcept {
    // _CMP_GE_OQ: ordered, quiet — false on NaN, exactly like scalar >=.
    return _mm256_movemask_pd(_mm256_cmp_pd(v, b.v, _CMP_GE_OQ));
  }
};

struct i64x4 {
  __m256i v;

  [[nodiscard]] static i64x4 load(const std::uint64_t* p) noexcept {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  [[nodiscard]] static i64x4 broadcast(std::uint64_t x) noexcept {
    return {_mm256_set1_epi64x(static_cast<long long>(x))};
  }
  void store(std::uint64_t* p) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }

  [[nodiscard]] friend i64x4 operator+(i64x4 a, i64x4 b) noexcept {
    return {_mm256_add_epi64(a.v, b.v)};
  }
  [[nodiscard]] friend i64x4 operator-(i64x4 a, i64x4 b) noexcept {
    return {_mm256_sub_epi64(a.v, b.v)};
  }
  [[nodiscard]] friend i64x4 operator^(i64x4 a, i64x4 b) noexcept {
    return {_mm256_xor_si256(a.v, b.v)};
  }
  template <int N>
  [[nodiscard]] i64x4 shl() const noexcept {
    return {_mm256_slli_epi64(v, N)};
  }
  template <int N>
  [[nodiscard]] i64x4 shr() const noexcept {
    return {_mm256_srli_epi64(v, N)};
  }
  [[nodiscard]] i64x4 sign_mask() const noexcept {
    // AVX2 has no 64-bit arithmetic shift: compare against zero instead
    // (all-ones exactly when the sign bit is set).
    return {_mm256_cmpgt_epi64(_mm256_setzero_si256(), v)};
  }
  [[nodiscard]] i64x4 min_s(i64x4 b) const noexcept {
    // No 64-bit min on AVX2: select through the compare mask (exact).
    const __m256i gt = _mm256_cmpgt_epi64(v, b.v);
    return {_mm256_blendv_epi8(v, b.v, gt)};
  }
  [[nodiscard]] i64x4 max_s(i64x4 b) const noexcept {
    const __m256i gt = _mm256_cmpgt_epi64(v, b.v);
    return {_mm256_blendv_epi8(b.v, v, gt)};
  }
  [[nodiscard]] int eq_mask(i64x4 b) const noexcept {
    return _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, b.v)));
  }
};

struct i32x4 {
  __m128i v;

  [[nodiscard]] static i32x4 load(const std::int32_t* p) noexcept {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  [[nodiscard]] static i32x4 broadcast(std::int32_t x) noexcept {
    return {_mm_set1_epi32(x)};
  }
  void store(std::int32_t* p) const noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }

  [[nodiscard]] friend i32x4 operator+(i32x4 a, i32x4 b) noexcept {
    return {_mm_add_epi32(a.v, b.v)};
  }
};

struct i32x8 {
  __m256i v;

  [[nodiscard]] static i32x8 load(const std::int32_t* p) noexcept {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  [[nodiscard]] static i32x8 broadcast(std::int32_t x) noexcept {
    return {_mm256_set1_epi32(x)};
  }
  void store(std::int32_t* p) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }

  [[nodiscard]] friend i32x8 operator+(i32x8 a, i32x8 b) noexcept {
    return {_mm256_add_epi32(a.v, b.v)};
  }
  [[nodiscard]] friend i32x8 operator-(i32x8 a, i32x8 b) noexcept {
    return {_mm256_sub_epi32(a.v, b.v)};
  }
  [[nodiscard]] i32x8 gt_mask(i32x8 b) const noexcept {
    return {_mm256_cmpgt_epi32(v, b.v)};
  }
  [[nodiscard]] int eq_mask(i32x8 b) const noexcept {
    return _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, b.v)));
  }
};

struct u8x32 {
  __m256i v;

  [[nodiscard]] static u8x32 load(const std::uint8_t* p) noexcept {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  [[nodiscard]] static u8x32 broadcast(std::uint8_t x) noexcept {
    return {_mm256_set1_epi8(static_cast<char>(x))};
  }
  void store(std::uint8_t* p) const noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }

  [[nodiscard]] std::uint32_t eq_mask(u8x32 b) const noexcept {
    return static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, b.v)));
  }
};

// ---------------------------------------------------------------------------
// SSE2 family: every fixed-width type is a pair of xmm halves with the
// same API; the per-lane operations are identical, only the register
// partitioning differs.
// ---------------------------------------------------------------------------

#elif STAGG_SIMD_LEVEL == 2

struct f64x4 {
  __m128d lo, hi;

  [[nodiscard]] static f64x4 load(const double* p) noexcept {
    return {_mm_loadu_pd(p), _mm_loadu_pd(p + 2)};
  }
  [[nodiscard]] static f64x4 broadcast(double x) noexcept {
    const __m128d b = _mm_set1_pd(x);
    return {b, b};
  }
  void store(double* p) const noexcept {
    _mm_storeu_pd(p, lo);
    _mm_storeu_pd(p + 2, hi);
  }

  [[nodiscard]] friend f64x4 operator+(f64x4 a, f64x4 b) noexcept {
    return {_mm_add_pd(a.lo, b.lo), _mm_add_pd(a.hi, b.hi)};
  }
  [[nodiscard]] friend f64x4 operator-(f64x4 a, f64x4 b) noexcept {
    return {_mm_sub_pd(a.lo, b.lo), _mm_sub_pd(a.hi, b.hi)};
  }
  [[nodiscard]] friend f64x4 operator*(f64x4 a, f64x4 b) noexcept {
    return {_mm_mul_pd(a.lo, b.lo), _mm_mul_pd(a.hi, b.hi)};
  }
  [[nodiscard]] friend f64x4 operator/(f64x4 a, f64x4 b) noexcept {
    return {_mm_div_pd(a.lo, b.lo), _mm_div_pd(a.hi, b.hi)};
  }
  [[nodiscard]] int ge_mask(f64x4 b) const noexcept {
    return _mm_movemask_pd(_mm_cmpge_pd(lo, b.lo)) |
           (_mm_movemask_pd(_mm_cmpge_pd(hi, b.hi)) << 2);
  }
};

struct i64x4 {
  __m128i lo, hi;

  [[nodiscard]] static i64x4 load(const std::uint64_t* p) noexcept {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 2))};
  }
  [[nodiscard]] static i64x4 broadcast(std::uint64_t x) noexcept {
    const __m128i b = _mm_set1_epi64x(static_cast<long long>(x));
    return {b, b};
  }
  void store(std::uint64_t* p) const noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p + 2), hi);
  }

  [[nodiscard]] friend i64x4 operator+(i64x4 a, i64x4 b) noexcept {
    return {_mm_add_epi64(a.lo, b.lo), _mm_add_epi64(a.hi, b.hi)};
  }
  [[nodiscard]] friend i64x4 operator-(i64x4 a, i64x4 b) noexcept {
    return {_mm_sub_epi64(a.lo, b.lo), _mm_sub_epi64(a.hi, b.hi)};
  }
  [[nodiscard]] friend i64x4 operator^(i64x4 a, i64x4 b) noexcept {
    return {_mm_xor_si128(a.lo, b.lo), _mm_xor_si128(a.hi, b.hi)};
  }
  template <int N>
  [[nodiscard]] i64x4 shl() const noexcept {
    return {_mm_slli_epi64(lo, N), _mm_slli_epi64(hi, N)};
  }
  template <int N>
  [[nodiscard]] i64x4 shr() const noexcept {
    return {_mm_srli_epi64(lo, N), _mm_srli_epi64(hi, N)};
  }
  [[nodiscard]] i64x4 sign_mask() const noexcept {
    // Broadcast each lane's sign bit: arithmetic shift of the odd 32-bit
    // halves, then duplicate them over the even halves.
    const __m128i slo = _mm_srai_epi32(lo, 31);
    const __m128i shi = _mm_srai_epi32(hi, 31);
    return {_mm_shuffle_epi32(slo, _MM_SHUFFLE(3, 3, 1, 1)),
            _mm_shuffle_epi32(shi, _MM_SHUFFLE(3, 3, 1, 1))};
  }
  [[nodiscard]] i64x4 min_s(i64x4 b) const noexcept {
    // SSE2 has no 64-bit compare at all — do it in scalar (exact); the
    // fence scans this feeds are not hot enough to justify emulation.
    alignas(16) std::uint64_t a4[4], b4[4];
    store(a4);
    b.store(b4);
    for (int i = 0; i < 4; ++i) {
      if (static_cast<std::int64_t>(b4[i]) < static_cast<std::int64_t>(a4[i]))
        a4[i] = b4[i];
    }
    return load(a4);
  }
  [[nodiscard]] i64x4 max_s(i64x4 b) const noexcept {
    alignas(16) std::uint64_t a4[4], b4[4];
    store(a4);
    b.store(b4);
    for (int i = 0; i < 4; ++i) {
      if (static_cast<std::int64_t>(b4[i]) > static_cast<std::int64_t>(a4[i]))
        a4[i] = b4[i];
    }
    return load(a4);
  }
  [[nodiscard]] int eq_mask(i64x4 b) const noexcept {
    // 64-bit equality from two 32-bit equalities per lane.
    const __m128i el = _mm_cmpeq_epi32(lo, b.lo);
    const __m128i eh = _mm_cmpeq_epi32(hi, b.hi);
    const int ml = _mm_movemask_ps(_mm_castsi128_ps(el));
    const int mh = _mm_movemask_ps(_mm_castsi128_ps(eh));
    int m = 0;
    if ((ml & 0x3) == 0x3) m |= 1;
    if ((ml & 0xC) == 0xC) m |= 2;
    if ((mh & 0x3) == 0x3) m |= 4;
    if ((mh & 0xC) == 0xC) m |= 8;
    return m;
  }
};

struct i32x4 {
  __m128i v;

  [[nodiscard]] static i32x4 load(const std::int32_t* p) noexcept {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  [[nodiscard]] static i32x4 broadcast(std::int32_t x) noexcept {
    return {_mm_set1_epi32(x)};
  }
  void store(std::int32_t* p) const noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }

  [[nodiscard]] friend i32x4 operator+(i32x4 a, i32x4 b) noexcept {
    return {_mm_add_epi32(a.v, b.v)};
  }
};

struct i32x8 {
  __m128i lo, hi;

  [[nodiscard]] static i32x8 load(const std::int32_t* p) noexcept {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 4))};
  }
  [[nodiscard]] static i32x8 broadcast(std::int32_t x) noexcept {
    const __m128i b = _mm_set1_epi32(x);
    return {b, b};
  }
  void store(std::int32_t* p) const noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p + 4), hi);
  }

  [[nodiscard]] friend i32x8 operator+(i32x8 a, i32x8 b) noexcept {
    return {_mm_add_epi32(a.lo, b.lo), _mm_add_epi32(a.hi, b.hi)};
  }
  [[nodiscard]] friend i32x8 operator-(i32x8 a, i32x8 b) noexcept {
    return {_mm_sub_epi32(a.lo, b.lo), _mm_sub_epi32(a.hi, b.hi)};
  }
  [[nodiscard]] i32x8 gt_mask(i32x8 b) const noexcept {
    return {_mm_cmpgt_epi32(lo, b.lo), _mm_cmpgt_epi32(hi, b.hi)};
  }
  [[nodiscard]] int eq_mask(i32x8 b) const noexcept {
    return _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lo, b.lo))) |
           (_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(hi, b.hi)))
            << 4);
  }
};

struct u8x32 {
  __m128i lo, hi;

  [[nodiscard]] static u8x32 load(const std::uint8_t* p) noexcept {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16))};
  }
  [[nodiscard]] static u8x32 broadcast(std::uint8_t x) noexcept {
    const __m128i b = _mm_set1_epi8(static_cast<char>(x));
    return {b, b};
  }
  void store(std::uint8_t* p) const noexcept {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p + 16), hi);
  }

  [[nodiscard]] std::uint32_t eq_mask(u8x32 b) const noexcept {
    const auto ml = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(lo, b.lo)));
    const auto mh = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(hi, b.hi)));
    return ml | (mh << 16);
  }
};

// ---------------------------------------------------------------------------
// NEON family (AArch64): pairs of 128-bit q registers.
// ---------------------------------------------------------------------------

#elif STAGG_SIMD_LEVEL == 1

struct f64x4 {
  float64x2_t lo, hi;

  [[nodiscard]] static f64x4 load(const double* p) noexcept {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  [[nodiscard]] static f64x4 broadcast(double x) noexcept {
    const float64x2_t b = vdupq_n_f64(x);
    return {b, b};
  }
  void store(double* p) const noexcept {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }

  [[nodiscard]] friend f64x4 operator+(f64x4 a, f64x4 b) noexcept {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  [[nodiscard]] friend f64x4 operator-(f64x4 a, f64x4 b) noexcept {
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
  }
  [[nodiscard]] friend f64x4 operator*(f64x4 a, f64x4 b) noexcept {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  [[nodiscard]] friend f64x4 operator/(f64x4 a, f64x4 b) noexcept {
    return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
  }
  [[nodiscard]] int ge_mask(f64x4 b) const noexcept {
    const uint64x2_t gl = vcgeq_f64(lo, b.lo);
    const uint64x2_t gh = vcgeq_f64(hi, b.hi);
    return static_cast<int>((vgetq_lane_u64(gl, 0) & 1) |
                            ((vgetq_lane_u64(gl, 1) & 1) << 1) |
                            ((vgetq_lane_u64(gh, 0) & 1) << 2) |
                            ((vgetq_lane_u64(gh, 1) & 1) << 3));
  }
};

struct i64x4 {
  uint64x2_t lo, hi;

  [[nodiscard]] static i64x4 load(const std::uint64_t* p) noexcept {
    return {vld1q_u64(p), vld1q_u64(p + 2)};
  }
  [[nodiscard]] static i64x4 broadcast(std::uint64_t x) noexcept {
    const uint64x2_t b = vdupq_n_u64(x);
    return {b, b};
  }
  void store(std::uint64_t* p) const noexcept {
    vst1q_u64(p, lo);
    vst1q_u64(p + 2, hi);
  }

  [[nodiscard]] friend i64x4 operator+(i64x4 a, i64x4 b) noexcept {
    return {vaddq_u64(a.lo, b.lo), vaddq_u64(a.hi, b.hi)};
  }
  [[nodiscard]] friend i64x4 operator-(i64x4 a, i64x4 b) noexcept {
    return {vsubq_u64(a.lo, b.lo), vsubq_u64(a.hi, b.hi)};
  }
  [[nodiscard]] friend i64x4 operator^(i64x4 a, i64x4 b) noexcept {
    return {veorq_u64(a.lo, b.lo), veorq_u64(a.hi, b.hi)};
  }
  template <int N>
  [[nodiscard]] i64x4 shl() const noexcept {
    return {vshlq_n_u64(lo, N), vshlq_n_u64(hi, N)};
  }
  template <int N>
  [[nodiscard]] i64x4 shr() const noexcept {
    return {vshrq_n_u64(lo, N), vshrq_n_u64(hi, N)};
  }
  [[nodiscard]] i64x4 sign_mask() const noexcept {
    return {vreinterpretq_u64_s64(
                vshrq_n_s64(vreinterpretq_s64_u64(lo), 63)),
            vreinterpretq_u64_s64(
                vshrq_n_s64(vreinterpretq_s64_u64(hi), 63))};
  }
  [[nodiscard]] i64x4 min_s(i64x4 b) const noexcept {
    const uint64x2_t gl = vcgtq_s64(vreinterpretq_s64_u64(lo),
                                    vreinterpretq_s64_u64(b.lo));
    const uint64x2_t gh = vcgtq_s64(vreinterpretq_s64_u64(hi),
                                    vreinterpretq_s64_u64(b.hi));
    return {vbslq_u64(gl, b.lo, lo), vbslq_u64(gh, b.hi, hi)};
  }
  [[nodiscard]] i64x4 max_s(i64x4 b) const noexcept {
    const uint64x2_t gl = vcgtq_s64(vreinterpretq_s64_u64(lo),
                                    vreinterpretq_s64_u64(b.lo));
    const uint64x2_t gh = vcgtq_s64(vreinterpretq_s64_u64(hi),
                                    vreinterpretq_s64_u64(b.hi));
    return {vbslq_u64(gl, lo, b.lo), vbslq_u64(gh, hi, b.hi)};
  }
  [[nodiscard]] int eq_mask(i64x4 b) const noexcept {
    const uint64x2_t el = vceqq_u64(lo, b.lo);
    const uint64x2_t eh = vceqq_u64(hi, b.hi);
    return static_cast<int>((vgetq_lane_u64(el, 0) & 1) |
                            ((vgetq_lane_u64(el, 1) & 1) << 1) |
                            ((vgetq_lane_u64(eh, 0) & 1) << 2) |
                            ((vgetq_lane_u64(eh, 1) & 1) << 3));
  }
};

struct i32x4 {
  int32x4_t v;

  [[nodiscard]] static i32x4 load(const std::int32_t* p) noexcept {
    return {vld1q_s32(p)};
  }
  [[nodiscard]] static i32x4 broadcast(std::int32_t x) noexcept {
    return {vdupq_n_s32(x)};
  }
  void store(std::int32_t* p) const noexcept { vst1q_s32(p, v); }

  [[nodiscard]] friend i32x4 operator+(i32x4 a, i32x4 b) noexcept {
    return {vaddq_s32(a.v, b.v)};
  }
};

struct i32x8 {
  int32x4_t lo, hi;

  [[nodiscard]] static i32x8 load(const std::int32_t* p) noexcept {
    return {vld1q_s32(p), vld1q_s32(p + 4)};
  }
  [[nodiscard]] static i32x8 broadcast(std::int32_t x) noexcept {
    const int32x4_t b = vdupq_n_s32(x);
    return {b, b};
  }
  void store(std::int32_t* p) const noexcept {
    vst1q_s32(p, lo);
    vst1q_s32(p + 4, hi);
  }

  [[nodiscard]] friend i32x8 operator+(i32x8 a, i32x8 b) noexcept {
    return {vaddq_s32(a.lo, b.lo), vaddq_s32(a.hi, b.hi)};
  }
  [[nodiscard]] friend i32x8 operator-(i32x8 a, i32x8 b) noexcept {
    return {vsubq_s32(a.lo, b.lo), vsubq_s32(a.hi, b.hi)};
  }
  [[nodiscard]] i32x8 gt_mask(i32x8 b) const noexcept {
    return {vreinterpretq_s32_u32(vcgtq_s32(lo, b.lo)),
            vreinterpretq_s32_u32(vcgtq_s32(hi, b.hi))};
  }
  [[nodiscard]] int eq_mask(i32x8 b) const noexcept {
    alignas(16) std::int32_t a8[8], b8[8];
    store(a8);
    b.store(b8);
    int m = 0;
    for (int i = 0; i < 8; ++i) m |= static_cast<int>(a8[i] == b8[i]) << i;
    return m;
  }
};

struct u8x32 {
  uint8x16_t lo, hi;

  [[nodiscard]] static u8x32 load(const std::uint8_t* p) noexcept {
    return {vld1q_u8(p), vld1q_u8(p + 16)};
  }
  [[nodiscard]] static u8x32 broadcast(std::uint8_t x) noexcept {
    const uint8x16_t b = vdupq_n_u8(x);
    return {b, b};
  }
  void store(std::uint8_t* p) const noexcept {
    vst1q_u8(p, lo);
    vst1q_u8(p + 16, hi);
  }

  [[nodiscard]] std::uint32_t eq_mask(u8x32 b) const noexcept {
    alignas(16) std::uint8_t a32[32], b32[32];
    store(a32);
    b.store(b32);
    std::uint32_t m = 0;
    for (int i = 0; i < 32; ++i) {
      m |= static_cast<std::uint32_t>(a32[i] == b32[i]) << i;
    }
    return m;
  }
};

#else  // STAGG_SIMD_LEVEL == 0: the scalar family IS the active family.

using f64x4 = sc::f64x4;
using i64x4 = sc::i64x4;
using i32x4 = sc::i32x4;
using i32x8 = sc::i32x8;
using u8x32 = sc::u8x32;

#endif

}  // namespace stagg::simd
