// Error hierarchy for the stagg library.
//
// The library throws (never aborts) on user-facing failures: malformed trace
// files, inconsistent model dimensions, or aggregation requests that would
// exceed the configured memory budget.  Internal invariant violations use
// assert and are exercised by the test suite in debug builds.
#pragma once

#include <stdexcept>
#include <string>

namespace stagg {

/// Base class of all stagg exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A trace file or stream could not be parsed (bad magic, truncated record,
/// unsorted timestamps, unknown resource/state id, ...).
class TraceFormatError : public Error {
 public:
  explicit TraceFormatError(const std::string& what)
      : Error("trace format error: " + what) {}
};

/// Filesystem-level failure (open/read/write).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// Model dimensions do not line up (e.g. a microscopic model built on a
/// different hierarchy than the one given to the aggregator).
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& what)
      : Error("dimension error: " + what) {}
};

/// An aggregation run would exceed the configured memory budget
/// (O(|S|*|T|^2) cells); the caller should reduce |T| or raise the budget.
class BudgetError : public Error {
 public:
  explicit BudgetError(const std::string& what)
      : Error("budget error: " + what) {}
};

/// Invalid argument at an API boundary (p outside [0,1], empty hierarchy,
/// zero slices, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what)
      : Error("invalid argument: " + what) {}
};

}  // namespace stagg
