// Fixed-size thread pool with task futures and a blocked-range parallel_for.
//
// The pool backs two hot paths: building the microscopic model (parallel
// over resources) and the spatiotemporal DP (parallel over independent
// sibling subtrees).  It is deliberately simple — a single mutex-protected
// deque — because task granularity in those paths is coarse (thousands of
// slice-clippings or one O(|T|^3) node DP per task).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stagg {

/// Fixed-size worker pool.  Tasks are std::function<void()>; submit() returns
/// a future.  Destruction waits for queued tasks to finish.
class ThreadPool {
 public:
  /// Creates a pool with `threads` workers.  `threads == 0` selects
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Submits a nullary callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs one queued task on the *calling* thread if any is pending;
  /// returns whether a task ran.  parallel_for_blocked callers help drain
  /// the queue with this while waiting for their own blocks, which makes
  /// nested parallel_for composable: an outer wave that has every worker
  /// blocked on inner futures still makes progress, because each blocked
  /// waiter executes inner tasks itself instead of idling (no idle-worker
  /// deadlock).  Exceptions of helped tasks are captured in their
  /// packaged_task future, never thrown here.
  bool try_run_one();

  /// Process-wide shared pool (lazily constructed, hardware concurrency).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Splits [0, n) into contiguous blocks and runs `body(begin, end)` on the
/// pool, blocking until all blocks complete.  With grain g, at most
/// ceil(n/g) tasks are spawned.  Exceptions from the body are propagated
/// (the first one observed).
void parallel_for_blocked(ThreadPool& pool, std::size_t n, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& body);

/// Convenience: element-wise parallel for on the shared pool.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 64);

}  // namespace stagg
