// Wall-clock stopwatch used by the Table II timing harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace stagg {

/// Monotonic wall-clock stopwatch.  Started on construction.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

  [[nodiscard]] std::int64_t nanoseconds() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

/// Formats a duration in seconds as a short human string ("<1s", "2.4s",
/// "613s") mirroring how Table II of the paper reports times.
[[nodiscard]] inline std::string format_seconds(double s) {
  if (s < 0.0005) return "<1ms";
  char buf[64];
  if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.0fms", s * 1e3);
  } else if (s < 10.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", s);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fs", s);
  }
  return buf;
}

}  // namespace stagg
