// Numeric kernels shared by the information-theoretic measures.
//
// The aggregation measures of the paper (Eq. 2-4) are sums of terms of the
// form x*log2(x) with the usual information-theoretic convention
// 0*log2(0) = 0.  Those sums run over |S|*|T|*|X| microscopic proportions, so
// they are kept branch-light and inlined.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace stagg {

/// x * log2(x) with the convention 0*log2(0) = 0.  Negative inputs are
/// invalid (proportions are non-negative); they are clamped in release
/// builds and assert in debug builds.
[[nodiscard]] inline double xlog2x(double x) noexcept {
  assert(x >= -1e-12 && "xlog2x: negative proportion");
  if (x <= 0.0) return 0.0;
  return x * std::log2(x);
}

/// log2 guarded for zero: returns 0 for x <= 0 (callers multiply by a weight
/// that is itself 0 in that case).
[[nodiscard]] inline double safe_log2(double x) noexcept {
  if (x <= 0.0) return 0.0;
  return std::log2(x);
}

/// a / b with 0/0 = 0.  Used for proportions rho = d_x / d(t).
[[nodiscard]] inline double safe_div(double a, double b) noexcept {
  if (b == 0.0) return 0.0;
  return a / b;
}

/// Kahan-Babuska compensated accumulator.  The data-cube prefix sums add
/// millions of tiny proportions; compensation keeps the loss/gain values
/// stable enough for exact comparisons between algorithm variants.
class KahanSum {
 public:
  constexpr KahanSum() noexcept = default;
  explicit constexpr KahanSum(double init) noexcept : sum_(init) {}

  constexpr void add(double v) noexcept {
    const double t = sum_ + v;
    if (std::abs(sum_) >= std::abs(v)) {
      comp_ += (sum_ - t) + v;
    } else {
      comp_ += (v - t) + sum_;
    }
    sum_ = t;
  }

  [[nodiscard]] constexpr double value() const noexcept { return sum_ + comp_; }

  KahanSum& operator+=(double v) noexcept {
    add(v);
    return *this;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// Sum of a span with compensation.
[[nodiscard]] inline double compensated_sum(std::span<const double> xs) noexcept {
  KahanSum s;
  for (double x : xs) s.add(x);
  return s.value();
}

/// Shannon entropy (bits) of a discrete distribution given as non-negative
/// weights (not necessarily normalized).  Returns 0 for an empty or
/// zero-mass input.
[[nodiscard]] double shannon_entropy(std::span<const double> weights) noexcept;

/// Kullback-Leibler divergence KL(p || q) in bits over two positive
/// distributions given as weights; both are normalized internally.
/// Terms where p_i == 0 contribute 0; p_i > 0 with q_i == 0 yields +inf.
[[nodiscard]] double kl_divergence(std::span<const double> p,
                                   std::span<const double> q) noexcept;

/// Relative difference |a-b| / max(|a|,|b|,eps); used by tests comparing
/// algorithm variants that must agree analytically.
[[nodiscard]] inline double rel_diff(double a, double b) noexcept {
  const double m = std::max({std::abs(a), std::abs(b), 1e-300});
  return std::abs(a - b) / m;
}

/// True when |a-b| <= atol + rtol*max(|a|,|b|).
[[nodiscard]] inline bool almost_equal(double a, double b, double rtol = 1e-9,
                                       double atol = 1e-12) noexcept {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

/// Simple running statistics (mean/variance/min/max), Welford's algorithm.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Least-squares slope of log(y) vs log(x); used by the complexity-scaling
/// bench to estimate empirical exponents (expected ~3 in |T|, ~1 in |S|).
[[nodiscard]] double loglog_slope(std::span<const double> x,
                                  std::span<const double> y);

}  // namespace stagg
