// Bounded blocking queue — the stage connector of the ingest pipeline
// (REAPER-style parser -> seal -> advance workers).
//
// Capacity is the backpressure mechanism: push() blocks while the queue is
// full, so a slow consumer throttles its producers instead of letting
// depth (and tail latency) balloon.  close() ends the stream: blocked
// producers fail fast, consumers drain what is left and then observe
// end-of-stream.  The queue is MPSC/SPSC-agnostic — any number of pushers
// and poppers is safe — but the pipeline wires it SPSC (per-shard input
// queues, the watermark queue) or MPSC (parse workers fanning into the
// seal worker).
//
// Observability: depth(), high_water() (deepest the queue has ever been)
// and blocked_pushes() (pushes that had to wait for space) let tests and
// benches assert that backpressure actually engaged and that depth stayed
// bounded — the property the satellite stress test pins.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace stagg {

/// Per-queue counters, snapshot under the queue lock.
struct BoundedQueueStats {
  std::size_t capacity = 0;
  std::size_t depth = 0;           ///< Current number of queued items.
  std::size_t high_water = 0;      ///< Max depth ever observed.
  std::uint64_t pushed = 0;        ///< Items accepted in total.
  std::uint64_t blocked_pushes = 0;  ///< Pushes that waited for space.
};

template <typename T>
class BoundedQueue {
 public:
  /// A queue holding at most `capacity` items (>= 1).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full; returns false (dropping `value`) once
  /// the queue is closed.  The block is the backpressure edge: a full
  /// downstream stage stalls this producer right here.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    if (items_.size() >= capacity_ && !closed_) {
      ++blocked_pushes_;
      space_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    ++pushed_;
    high_water_ = std::max(high_water_, items_.size());
    lock.unlock();
    ready_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed (value is dropped).
  bool try_push(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      ++pushed_;
      high_water_ = std::max(high_water_, items_.size());
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open; returns nullopt only when
  /// the queue is closed *and* drained (close is a graceful end-of-stream,
  /// never a drop).
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_.notify_one();
    return value;
  }

  /// Non-blocking pop; nullopt when currently empty (closed or not).
  std::optional<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    space_.notify_one();
    return value;
  }

  /// Ends the stream: blocked producers return false, consumers drain the
  /// remaining items and then see end-of-stream.  Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] BoundedQueueStats stats() const {
    std::lock_guard lock(mutex_);
    return {capacity_, items_.size(), high_water_, pushed_, blocked_pushes_};
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  ///< Signals items available.
  std::condition_variable space_;  ///< Signals space available.
  std::deque<T> items_;
  bool closed_ = false;
  std::size_t high_water_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t blocked_pushes_ = 0;
};

}  // namespace stagg
