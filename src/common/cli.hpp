// Minimal command-line parser for the examples and bench binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag` options plus
// positional arguments, with typed accessors and an auto-generated usage
// string.  Environment-variable fallbacks let the bench harness be tuned
// without arguments (the `for b in build/bench/*; do $b; done` loop).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace stagg {

/// Declarative CLI option set.
class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Declares an option with a default value (rendered in --help).
  Cli& option(std::string name, std::string default_value, std::string help);
  /// Declares a boolean flag (false unless present).
  Cli& flag(std::string name, std::string help);

  /// Parses argv.  Returns false (after printing usage) on --help or error.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  struct Opt {
    std::string default_value;
    std::string help;
    bool is_flag = false;
    std::optional<std::string> value;
  };
  std::string program_;
  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> positional_;
};

/// Reads an environment variable as double with a default; used for
/// STAGG_SCALE / STAGG_THREADS knobs in benches.
[[nodiscard]] double env_double(const char* name, double fallback);
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

}  // namespace stagg
