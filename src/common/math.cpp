#include "common/math.hpp"

#include <numeric>

namespace stagg {

double shannon_entropy(std::span<const double> weights) noexcept {
  KahanSum total;
  for (double w : weights) {
    if (w > 0.0) total.add(w);
  }
  const double z = total.value();
  if (z <= 0.0) return 0.0;
  KahanSum h;
  for (double w : weights) {
    if (w > 0.0) {
      const double p = w / z;
      h.add(-p * std::log2(p));
    }
  }
  return h.value();
}

double kl_divergence(std::span<const double> p,
                     std::span<const double> q) noexcept {
  assert(p.size() == q.size());
  KahanSum zp, zq;
  for (double v : p) zp.add(v);
  for (double v : q) zq.add(v);
  if (zp.value() <= 0.0 || zq.value() <= 0.0) return 0.0;
  KahanSum kl;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] / zp.value();
    if (pi <= 0.0) continue;
    const double qi = q[i] / zq.value();
    if (qi <= 0.0) return std::numeric_limits<double>::infinity();
    kl.add(pi * std::log2(pi / qi));
  }
  return kl.value();
}

double loglog_slope(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++m;
  }
  if (m < 2) return 0.0;
  const double dm = static_cast<double>(m);
  const double denom = dm * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (dm * sxy - sx * sy) / denom;
}

}  // namespace stagg
