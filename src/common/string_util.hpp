// Small string helpers used by the CSV trace reader and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace stagg {

/// Splits `s` on `sep` (no escaping).  Empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] inline bool starts_with(std::string_view s, std::string_view p) {
  return s.substr(0, p.size()) == p;
}

/// Joins strings with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Formats a count with thousands separators: 3838144 -> "3,838,144"
/// (Table II prints event counts this way).
[[nodiscard]] std::string with_thousands(long long v);

/// Formats a byte count as "136.9 MB" / "1.8 GB" style.
[[nodiscard]] std::string format_bytes(unsigned long long bytes);

/// Throws stagg::TraceFormatError if `value` contains a comma or a line
/// break — characters the comma-separated trace formats (CSV, pj_dump)
/// cannot represent in a field; split() does no escaping, so writing such
/// a name would silently corrupt the writer→reader roundtrip.  `what`
/// names the field for the error message (e.g. "resource path").
void require_field_safe(std::string_view value, std::string_view what);

/// Parses a double, throwing stagg::TraceFormatError with context on failure.
[[nodiscard]] double parse_double(std::string_view s, std::string_view context);

/// Parses a signed 64-bit integer, throwing TraceFormatError on failure.
[[nodiscard]] long long parse_int(std::string_view s, std::string_view context);

}  // namespace stagg
