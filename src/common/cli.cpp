#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace stagg {

Cli::Cli(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

Cli& Cli::option(std::string name, std::string default_value,
                 std::string help) {
  order_.push_back(name);
  opts_[std::move(name)] = Opt{std::move(default_value), std::move(help),
                               /*is_flag=*/false, std::nullopt};
  return *this;
}

Cli& Cli::flag(std::string name, std::string help) {
  order_.push_back(name);
  opts_[std::move(name)] =
      Opt{"false", std::move(help), /*is_flag=*/true, std::nullopt};
  return *this;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (starts_with(arg, "--")) {
      std::string name = arg.substr(2);
      std::string value;
      bool has_value = false;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_value = true;
      }
      auto it = opts_.find(name);
      if (it == opts_.end()) {
        std::fprintf(stderr, "unknown option --%s\n%s", name.c_str(),
                     usage().c_str());
        return false;
      }
      if (it->second.is_flag) {
        it->second.value = has_value ? value : "true";
      } else if (has_value) {
        it->second.value = value;
      } else if (i + 1 < argc) {
        it->second.value = argv[++i];
      } else {
        std::fprintf(stderr, "option --%s expects a value\n", name.c_str());
        return false;
      }
    } else {
      positional_.push_back(arg);
    }
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  const auto it = opts_.find(name);
  if (it == opts_.end()) {
    throw InvalidArgument("undeclared CLI option --" + name);
  }
  return it->second.value.value_or(it->second.default_value);
}

std::int64_t Cli::get_int(const std::string& name) const {
  return parse_int(get(name), "--" + name);
}

double Cli::get_double(const std::string& name) const {
  return parse_double(get(name), "--" + name);
}

bool Cli::get_flag(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const auto& opt = opts_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) os << " <value>";
    os << "\n      " << opt.help;
    if (!opt.is_flag) os << " (default: " << opt.default_value << ")";
    os << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace stagg
