// Grid'5000 platform presets (paper §V, Table II).
//
// The paper's resource hierarchy is: site > cluster > machine > core, with
// one MPI process bound to each core.  The presets below reproduce the four
// experimental sites of Table II; the process count can be scaled down (the
// scaling keeps the cluster proportions) so the bench harness runs on a
// laptop while preserving the heterogeneity the paper's analysis relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hierarchy/hierarchy.hpp"

namespace stagg {

/// Interconnect family of a cluster; used by the LU workload model, where
/// Ethernet clusters exhibit slower, more irregular communication (the
/// paper's Graphite observation).
enum class Interconnect : std::uint8_t {
  kInfiniband20G,
  kInfinibandMT25418,
  kEthernet10G,
};

[[nodiscard]] const char* to_string(Interconnect ic) noexcept;

/// Homogeneous cluster description.
struct ClusterSpec {
  std::string name;
  std::int32_t machines = 0;
  std::int32_t cores_per_machine = 0;
  Interconnect interconnect = Interconnect::kInfiniband20G;

  [[nodiscard]] std::int32_t cores() const noexcept {
    return machines * cores_per_machine;
  }
};

/// A Grid'5000 site: a named list of clusters.
struct PlatformSpec {
  std::string site;
  std::vector<ClusterSpec> clusters;

  [[nodiscard]] std::int32_t total_cores() const noexcept;
  [[nodiscard]] std::int32_t total_machines() const noexcept;

  /// Returns a copy scaled to approximately `target_cores` total cores,
  /// keeping cores-per-machine fixed and shrinking machine counts
  /// proportionally (at least one machine per cluster survives).
  [[nodiscard]] PlatformSpec scaled_to(std::int32_t target_cores) const;

  /// Materializes the site as a Hierarchy: site / cluster / machine / core.
  /// Only the first `process_limit` cores (DFS order) are kept when the
  /// limit is positive — Table II case C uses 700 of Nancy's 704 cores.
  [[nodiscard]] Hierarchy build_hierarchy(std::int32_t process_limit = 0) const;
};

/// Table II case A: Rennes, cluster parapide (8 machines x 8 cores),
/// Infiniband MT25418 — 64 processes.
[[nodiscard]] PlatformSpec grid5000_rennes_parapide();

/// Table II case B: Grenoble, adonis(9) + edel(24) + genepi(31) machines,
/// 8 cores each — 512 processes.
[[nodiscard]] PlatformSpec grid5000_grenoble();

/// Table II case C: Nancy, graphene(26 x 4, IB-20G) + graphite(4 x 16,
/// 10 GbE) + griffon(67 x 8, IB-20G) — 704 cores, 700 used.
[[nodiscard]] PlatformSpec grid5000_nancy();

/// Table II case D: Rennes, paradent(38 x 8) + parapide(21 x 8) +
/// parapluie(18 x 24) — 904 cores, 900 used.
[[nodiscard]] PlatformSpec grid5000_rennes_triple();

}  // namespace stagg
