#include "hierarchy/hierarchy.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace stagg {

std::string Hierarchy::path(NodeId id) const {
  std::vector<std::string> parts;
  for (NodeId cur = id; cur != kNoNode; cur = node(cur).parent) {
    parts.push_back(node(cur).name);
  }
  std::reverse(parts.begin(), parts.end());
  return join(parts, "/");
}

NodeId Hierarchy::find(std::string_view path_str) const {
  if (empty()) return kNoNode;
  const auto parts = split(path_str, '/');
  if (parts.empty() || parts[0] != node(root()).name) return kNoNode;
  NodeId cur = root();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    NodeId next = kNoNode;
    for (NodeId child : node(cur).children) {
      if (node(child).name == parts[i]) {
        next = child;
        break;
      }
    }
    if (next == kNoNode) return kNoNode;
    cur = next;
  }
  return cur;
}

std::vector<NodeId> Hierarchy::nodes_at_depth(std::int32_t depth) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    if (node(id).depth == depth) out.push_back(id);
  }
  // Order by leaf range so the output follows the DFS layout.
  std::sort(out.begin(), out.end(), [this](NodeId a, NodeId b) {
    return node(a).first_leaf < node(b).first_leaf;
  });
  return out;
}

NodeId Hierarchy::ancestor_at_depth(NodeId id, std::int32_t depth) const {
  if (depth > node(id).depth) {
    throw InvalidArgument("ancestor_at_depth: requested depth below node");
  }
  NodeId cur = id;
  while (node(cur).depth > depth) cur = node(cur).parent;
  return cur;
}

bool Hierarchy::validate() const {
  if (empty()) return false;
  if (node(root()).parent != kNoNode) return false;
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    const auto& n = node(id);
    if (n.children.empty()) {
      if (n.leaf_count != 1) return false;
      if (leaves_[static_cast<std::size_t>(n.first_leaf)] != id) return false;
    } else {
      std::int32_t sum = 0;
      LeafId expect = n.first_leaf;
      for (NodeId c : n.children) {
        const auto& cn = node(c);
        if (cn.parent != id) return false;
        if (cn.first_leaf != expect) return false;  // contiguity
        if (cn.depth != n.depth + 1) return false;
        expect += cn.leaf_count;
        sum += cn.leaf_count;
      }
      if (sum != n.leaf_count) return false;
    }
  }
  return true;
}

HierarchyBuilder::HierarchyBuilder(std::string root_name) {
  HierarchyNode root;
  root.name = std::move(root_name);
  h_.nodes_.push_back(std::move(root));
}

NodeId HierarchyBuilder::add(NodeId parent, std::string name) {
  if (parent < 0 || parent >= static_cast<NodeId>(h_.nodes_.size())) {
    throw InvalidArgument("HierarchyBuilder::add: bad parent id");
  }
  const NodeId id = static_cast<NodeId>(h_.nodes_.size());
  HierarchyNode n;
  n.name = std::move(name);
  n.parent = parent;
  n.depth = h_.nodes_[static_cast<std::size_t>(parent)].depth + 1;
  h_.nodes_.push_back(std::move(n));
  h_.nodes_[static_cast<std::size_t>(parent)].children.push_back(id);
  return id;
}

std::vector<NodeId> HierarchyBuilder::add_many(NodeId parent,
                                               std::string_view prefix,
                                               std::int32_t count) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (std::int32_t i = 0; i < count; ++i) {
    ids.push_back(add(parent, std::string(prefix) + std::to_string(i)));
  }
  return ids;
}

Hierarchy HierarchyBuilder::finish() {
  // DFS from the root assigns leaf numbers and builds the post-order.
  h_.leaves_.clear();
  h_.post_order_.clear();
  h_.max_depth_ = 0;

  // Iterative post-order DFS that respects child insertion order.
  struct Frame {
    NodeId id;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({0, 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    auto& n = h_.nodes_[static_cast<std::size_t>(f.id)];
    if (f.next_child == 0) {
      h_.max_depth_ = std::max(h_.max_depth_, n.depth);
      if (n.children.empty()) {
        n.first_leaf = static_cast<LeafId>(h_.leaves_.size());
        n.leaf_count = 1;
        h_.leaves_.push_back(f.id);
      } else {
        n.first_leaf = static_cast<LeafId>(h_.leaves_.size());
        n.leaf_count = 0;
      }
    }
    if (f.next_child < n.children.size()) {
      const NodeId child = n.children[f.next_child++];
      stack.push_back({child, 0});
    } else {
      if (!n.children.empty()) {
        for (NodeId c : n.children) {
          n.leaf_count += h_.nodes_[static_cast<std::size_t>(c)].leaf_count;
        }
        if (n.leaf_count == 0) {
          throw InvalidArgument("hierarchy node '" + n.name +
                                "' has no leaf below it");
        }
      }
      h_.post_order_.push_back(f.id);
      stack.pop_back();
    }
  }
  return std::move(h_);
}

Hierarchy make_balanced_hierarchy(std::int32_t levels, std::int32_t fanout,
                                  std::string root_name) {
  if (levels < 0 || fanout < 1) {
    throw InvalidArgument("make_balanced_hierarchy: levels>=0, fanout>=1");
  }
  HierarchyBuilder b(std::move(root_name));
  std::vector<NodeId> frontier = {0};
  for (std::int32_t l = 0; l < levels; ++l) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(fanout));
    std::string prefix("n");
    prefix += std::to_string(l);
    prefix += '_';
    for (NodeId p : frontier) {
      const auto kids = b.add_many(p, prefix, fanout);
      next.insert(next.end(), kids.begin(), kids.end());
    }
    frontier = std::move(next);
  }
  return b.finish();
}

Hierarchy make_flat_hierarchy(std::int32_t n, std::string root_name) {
  if (n < 1) throw InvalidArgument("make_flat_hierarchy: n >= 1 required");
  HierarchyBuilder b(std::move(root_name));
  b.add_many(0, "r", n);
  return b.finish();
}

}  // namespace stagg
