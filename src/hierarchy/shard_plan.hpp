// Static partition of a hierarchy's leaves into S resource shards.
//
// A ShardPlan cuts the tree at a frontier of subtrees (splitting the
// largest subtree until there are at least S pieces, dariadb-style
// per-shard engines under one facade) and assigns the frontier — which is
// in DFS leaf order — to S contiguous leaf ranges of near-equal size.
// Because every hierarchy subtree owns a contiguous leaf interval
// [first_leaf, first_leaf + leaf_count), shard ownership is decided by
// interval containment:
//
//   node owned by shard k  <=>  its leaf interval fits inside shard k's
//   spine node             <=>  its leaf interval spans a shard boundary
//
// Containment is inherited downward: an owned node's children are owned by
// the same shard.  This is the property the partitioned DataCube fold
// relies on — every shard can accumulate its owned nodes bottom-up with no
// cross-shard reads, and a final serial pass over the (small) spine folds
// the per-shard partial cubes into the parent levels.  Both passes apply
// the exact same per-node child-order accumulation as the monolithic fold,
// so the result is bit-identical at every shard count, including S = 1.
//
// The plan is immutable after construction and holds no reference to trace
// data; the ShardedTraceStore, DataCube and MeasureCache all consume the
// same plan so routing, folding and cache scheduling agree on ownership.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hierarchy/hierarchy.hpp"

namespace stagg {

class ShardPlan {
 public:
  /// Sentinel shard index for spine nodes (owned by no single shard).
  static constexpr std::int32_t kSpine = -1;

  /// Builds a plan with up to `shards` shards (clamped to [1, leaf_count]).
  ShardPlan(const Hierarchy& hierarchy, std::size_t shards);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return leaf_begin_.size();
  }

  /// Hierarchy this plan partitions.  Consumers built against a different
  /// hierarchy (scoped sessions) must ignore the plan; the identity check
  /// is by address because plans never outlive their hierarchy.
  [[nodiscard]] const Hierarchy* hierarchy() const noexcept {
    return hierarchy_;
  }

  /// Shard k owns the contiguous leaf range [leaf_begin(k), leaf_end(k)).
  [[nodiscard]] LeafId leaf_begin(std::size_t shard) const noexcept {
    return leaf_begin_[shard];
  }
  [[nodiscard]] LeafId leaf_end(std::size_t shard) const noexcept {
    return leaf_end_[shard];
  }

  [[nodiscard]] std::size_t shard_of_leaf(LeafId leaf) const noexcept {
    return static_cast<std::size_t>(
        shard_of_leaf_[static_cast<std::size_t>(leaf)]);
  }

  /// Owning shard of a node, or kSpine when the node's leaf interval
  /// crosses a shard boundary.
  [[nodiscard]] std::int32_t shard_of_node(NodeId node) const noexcept {
    return node_shard_[static_cast<std::size_t>(node)];
  }

  /// Nodes owned by shard k, in hierarchy post-order (children before
  /// parents) — the fold order of the partitioned DataCube pass.
  [[nodiscard]] std::span<const NodeId> owned_nodes(
      std::size_t shard) const noexcept {
    return owned_nodes_[shard];
  }

  /// Spine nodes (crossing a shard boundary), in post-order.  Every child
  /// of a spine node is either owned or an earlier spine node, so a serial
  /// pass over this list after the per-shard passes completes the fold.
  [[nodiscard]] std::span<const NodeId> spine_nodes() const noexcept {
    return spine_nodes_;
  }

  /// Structural invariants: the leaf ranges partition [0, leaf_count) in
  /// order, every node is owned by exactly one shard or is spine,
  /// ownership matches interval containment, owned children share their
  /// parent's shard, and the owned/spine lists are post-order consistent.
  /// Throws ContractError on violation.
  void audit() const;

 private:
  const Hierarchy* hierarchy_;
  std::vector<LeafId> leaf_begin_;
  std::vector<LeafId> leaf_end_;
  std::vector<std::int32_t> shard_of_leaf_;
  std::vector<std::int32_t> node_shard_;
  std::vector<std::vector<NodeId>> owned_nodes_;
  std::vector<NodeId> spine_nodes_;
};

}  // namespace stagg
