#include "hierarchy/platform.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace stagg {

const char* to_string(Interconnect ic) noexcept {
  switch (ic) {
    case Interconnect::kInfiniband20G:
      return "Infiniband-20G";
    case Interconnect::kInfinibandMT25418:
      return "Infiniband MT25418";
    case Interconnect::kEthernet10G:
      return "10G Ethernet";
  }
  return "unknown";
}

std::int32_t PlatformSpec::total_cores() const noexcept {
  std::int32_t total = 0;
  for (const auto& c : clusters) total += c.cores();
  return total;
}

std::int32_t PlatformSpec::total_machines() const noexcept {
  std::int32_t total = 0;
  for (const auto& c : clusters) total += c.machines;
  return total;
}

PlatformSpec PlatformSpec::scaled_to(std::int32_t target_cores) const {
  if (target_cores <= 0) {
    throw InvalidArgument("scaled_to: target_cores must be positive");
  }
  const double ratio =
      static_cast<double>(target_cores) / static_cast<double>(total_cores());
  PlatformSpec out;
  out.site = site;
  for (const auto& c : clusters) {
    ClusterSpec s = c;
    s.machines = std::max<std::int32_t>(
        1, static_cast<std::int32_t>(std::lround(c.machines * ratio)));
    out.clusters.push_back(std::move(s));
  }
  return out;
}

Hierarchy PlatformSpec::build_hierarchy(std::int32_t process_limit) const {
  HierarchyBuilder b(site);
  std::int32_t emitted = 0;
  for (const auto& cluster : clusters) {
    if (process_limit > 0 && emitted >= process_limit) break;
    const NodeId cluster_id = b.add(0, cluster.name);
    for (std::int32_t m = 0; m < cluster.machines; ++m) {
      if (process_limit > 0 && emitted >= process_limit) break;
      const NodeId machine_id =
          b.add(cluster_id, cluster.name + "-" + std::to_string(m));
      for (std::int32_t c = 0; c < cluster.cores_per_machine; ++c) {
        if (process_limit > 0 && emitted >= process_limit) break;
        b.add(machine_id, "core" + std::to_string(c));
        ++emitted;
      }
    }
  }
  return b.finish();
}

PlatformSpec grid5000_rennes_parapide() {
  return {"rennes",
          {{"parapide", 8, 8, Interconnect::kInfinibandMT25418}}};
}

PlatformSpec grid5000_grenoble() {
  return {"grenoble",
          {{"adonis", 9, 8, Interconnect::kInfiniband20G},
           {"edel", 24, 8, Interconnect::kInfiniband20G},
           {"genepi", 31, 8, Interconnect::kInfiniband20G}}};
}

PlatformSpec grid5000_nancy() {
  return {"nancy",
          {{"graphene", 26, 4, Interconnect::kInfiniband20G},
           {"graphite", 4, 16, Interconnect::kEthernet10G},
           {"griffon", 67, 8, Interconnect::kInfiniband20G}}};
}

PlatformSpec grid5000_rennes_triple() {
  return {"rennes",
          {{"paradent", 38, 8, Interconnect::kInfiniband20G},
           {"parapide", 21, 8, Interconnect::kInfinibandMT25418},
           {"parapluie", 18, 24, Interconnect::kInfiniband20G}}};
}

}  // namespace stagg
