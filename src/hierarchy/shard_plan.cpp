#include "hierarchy/shard_plan.hpp"

#include <algorithm>
#include <string>

#include "common/contract.hpp"

namespace stagg {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw ContractError("ShardPlan::audit: " + what);
}

}  // namespace

ShardPlan::ShardPlan(const Hierarchy& hierarchy, std::size_t shards)
    : hierarchy_(&hierarchy) {
  const std::size_t n_leaves = hierarchy.leaf_count();
  const std::size_t want = std::clamp<std::size_t>(shards, 1, n_leaves);

  // Frontier of subtree roots covering all leaves, kept in DFS leaf order.
  // Split the largest subtree (by leaf count) into its children until the
  // frontier has at least `want` pieces.  Leaves are unsplittable; chain
  // nodes (one child) shrink toward their leaf without growing the
  // frontier, so the loop terminates within node_count replacements.
  std::vector<NodeId> frontier{hierarchy.root()};
  while (frontier.size() < want) {
    std::size_t best = frontier.size();
    std::int32_t best_leaves = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const HierarchyNode& node = hierarchy.node(frontier[i]);
      if (node.children.empty()) continue;
      if (node.leaf_count > best_leaves) {
        best_leaves = node.leaf_count;
        best = i;
      }
    }
    if (best == frontier.size()) break;  // all-leaf frontier (== n_leaves)
    const std::vector<NodeId>& children =
        hierarchy.node(frontier[best]).children;
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(best));
    frontier.insert(frontier.begin() + static_cast<std::ptrdiff_t>(best),
                    children.begin(), children.end());
  }

  // Greedy contiguous grouping: shard k takes frontier subtrees until it
  // reaches its proportional leaf target, always leaving at least one
  // subtree per remaining shard.
  const std::size_t n_shards = std::min(want, frontier.size());
  leaf_begin_.reserve(n_shards);
  leaf_end_.reserve(n_shards);
  std::size_t idx = 0;
  std::int32_t leaves_left = static_cast<std::int32_t>(n_leaves);
  for (std::size_t k = 0; k < n_shards; ++k) {
    const std::size_t must_leave = n_shards - 1 - k;
    const std::int32_t remaining_shards =
        static_cast<std::int32_t>(n_shards - k);
    const std::int32_t target =
        (leaves_left + remaining_shards - 1) / remaining_shards;
    const HierarchyNode& first = hierarchy.node(frontier[idx]);
    leaf_begin_.push_back(first.first_leaf);
    std::int32_t took = first.leaf_count;
    ++idx;
    while (frontier.size() - idx > must_leave) {
      const std::int32_t next = hierarchy.node(frontier[idx]).leaf_count;
      if (took + next > target) break;
      took += next;
      ++idx;
    }
    leaf_end_.push_back(leaf_begin_.back() + took);
    leaves_left -= took;
  }
  // Trailing subtrees the greedy pass left over extend the last shard.
  leaf_end_.back() = static_cast<LeafId>(n_leaves);

  shard_of_leaf_.resize(n_leaves);
  for (std::size_t k = 0; k < n_shards; ++k) {
    for (LeafId s = leaf_begin_[k]; s < leaf_end_[k]; ++s) {
      shard_of_leaf_[static_cast<std::size_t>(s)] =
          static_cast<std::int32_t>(k);
    }
  }

  // Node ownership by leaf-interval containment, lists in post-order.
  node_shard_.assign(hierarchy.node_count(), kSpine);
  owned_nodes_.resize(n_shards);
  for (NodeId id : hierarchy.post_order()) {
    const HierarchyNode& node = hierarchy.node(id);
    const std::size_t k = shard_of_leaf(node.first_leaf);
    if (node.first_leaf + node.leaf_count <= leaf_end_[k]) {
      node_shard_[static_cast<std::size_t>(id)] = static_cast<std::int32_t>(k);
      owned_nodes_[k].push_back(id);
    } else {
      spine_nodes_.push_back(id);
    }
  }
}

void ShardPlan::audit() const {
  const Hierarchy& h = *hierarchy_;
  const std::size_t n_shards = shard_count();
  if (n_shards == 0) fail("no shards");
  LeafId expect = 0;
  for (std::size_t k = 0; k < n_shards; ++k) {
    if (leaf_begin_[k] != expect) fail("leaf ranges are not contiguous");
    if (leaf_end_[k] <= leaf_begin_[k]) fail("empty shard leaf range");
    expect = leaf_end_[k];
    for (LeafId s = leaf_begin_[k]; s < leaf_end_[k]; ++s) {
      if (shard_of_leaf(s) != k) fail("shard_of_leaf disagrees with range");
    }
  }
  if (static_cast<std::size_t>(expect) != h.leaf_count()) {
    fail("leaf ranges do not cover all leaves");
  }
  std::size_t listed = spine_nodes_.size();
  for (const auto& owned : owned_nodes_) listed += owned.size();
  if (listed != h.node_count()) {
    fail("owned/spine lists do not partition the node set");
  }
  for (NodeId id = 0; id < static_cast<NodeId>(h.node_count()); ++id) {
    const HierarchyNode& node = h.node(id);
    const std::size_t k = shard_of_leaf(node.first_leaf);
    const bool contained = node.first_leaf + node.leaf_count <= leaf_end_[k];
    const std::int32_t shard = shard_of_node(id);
    if (contained != (shard != kSpine)) {
      fail("ownership disagrees with leaf-interval containment");
    }
    if (contained && shard != static_cast<std::int32_t>(k)) {
      fail("owned node assigned to the wrong shard");
    }
    for (NodeId child : node.children) {
      if (shard != kSpine && shard_of_node(child) != shard) {
        fail("owned node has a child outside its shard");
      }
    }
  }
  // Post-order consistency: children strictly precede parents in each
  // shard's fold list, and spine children of spine nodes precede them.
  std::vector<std::int64_t> position(h.node_count(), -1);
  auto check_order = [&](std::span<const NodeId> list, const char* what) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      position[static_cast<std::size_t>(list[i])] =
          static_cast<std::int64_t>(i);
    }
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (NodeId child : h.node(list[i]).children) {
        const std::int64_t at = position[static_cast<std::size_t>(child)];
        if (at >= static_cast<std::int64_t>(i)) {
          fail(std::string(what) + " list is not post-order");
        }
      }
    }
    for (NodeId id : list) position[static_cast<std::size_t>(id)] = -1;
  };
  for (const auto& owned : owned_nodes_) check_order(owned, "owned");
  // A spine node's children are either owned (folded before the spine
  // pass) or spine nodes listed earlier.
  for (std::size_t i = 0; i < spine_nodes_.size(); ++i) {
    position[static_cast<std::size_t>(spine_nodes_[i])] =
        static_cast<std::int64_t>(i);
  }
  for (std::size_t i = 0; i < spine_nodes_.size(); ++i) {
    for (NodeId child : h.node(spine_nodes_[i]).children) {
      if (shard_of_node(child) != kSpine) continue;
      if (position[static_cast<std::size_t>(child)] >=
          static_cast<std::int64_t>(i)) {
        fail("spine list is not post-order");
      }
    }
  }
}

}  // namespace stagg
