// The spatial dimension of the trace model (paper §III-A(1)).
//
// A hierarchy H(S) over the resource set S is a rooted tree whose leaves are
// the microscopic resources (processes/cores) and whose internal nodes are
// platform groupings (machines, clusters, sites).  Leaves are numbered in
// DFS order so that every subtree owns a *contiguous* leaf range
// [first_leaf, first_leaf + leaf_count); all per-resource arrays in the
// library are stored leaf-major and sliced per node without copying.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace stagg {

/// Index of a node inside a Hierarchy (root included).
using NodeId = std::int32_t;
/// Index of a leaf in DFS leaf order; equals the resource index of the
/// microscopic model.
using LeafId = std::int32_t;

inline constexpr NodeId kNoNode = -1;

/// One node of the hierarchy tree.
struct HierarchyNode {
  std::string name;                 ///< Component name ("parapide-3", "core7").
  NodeId parent = kNoNode;          ///< Parent node, kNoNode for the root.
  std::vector<NodeId> children;     ///< Child nodes (empty for leaves).
  LeafId first_leaf = 0;            ///< First leaf of the subtree (DFS order).
  std::int32_t leaf_count = 0;      ///< |S_k|: leaves under this node.
  std::int32_t depth = 0;           ///< Root has depth 0.
};

/// Immutable rooted tree over the resource set.  Built via HierarchyBuilder.
class Hierarchy {
 public:
  Hierarchy() = default;

  [[nodiscard]] NodeId root() const noexcept { return 0; }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t leaf_count() const noexcept { return leaves_.size(); }

  [[nodiscard]] const HierarchyNode& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] bool is_leaf(NodeId id) const {
    return node(id).children.empty();
  }

  /// Node ids in a post-order (children before parents) — the traversal
  /// order of the aggregation recursion.
  [[nodiscard]] const std::vector<NodeId>& post_order() const noexcept {
    return post_order_;
  }
  /// Leaves in DFS order; leaves_[i] is the node id of resource i.
  [[nodiscard]] const std::vector<NodeId>& leaves() const noexcept {
    return leaves_;
  }
  /// Node id of leaf (resource) `leaf`.
  [[nodiscard]] NodeId leaf_node(LeafId leaf) const {
    return leaves_[static_cast<std::size_t>(leaf)];
  }

  /// Slash-separated path from the root ("rennes/parapide/parapide-1/core0").
  [[nodiscard]] std::string path(NodeId id) const;

  /// Looks a node up by path; returns kNoNode when absent.
  [[nodiscard]] NodeId find(std::string_view path) const;

  /// Maximum depth of any node.
  [[nodiscard]] std::int32_t max_depth() const noexcept { return max_depth_; }

  /// All nodes at the given depth, in DFS order (e.g. clusters at depth 1).
  [[nodiscard]] std::vector<NodeId> nodes_at_depth(std::int32_t depth) const;

  /// The ancestor of `id` at depth `depth` (id itself if node(id).depth ==
  /// depth).  Requires depth <= node(id).depth.
  [[nodiscard]] NodeId ancestor_at_depth(NodeId id, std::int32_t depth) const;

  /// Structural-consistency check used by tests: leaf ranges contiguous,
  /// parent/child symmetry, leaf counts additive.
  [[nodiscard]] bool validate() const;

 private:
  friend class HierarchyBuilder;
  std::vector<HierarchyNode> nodes_;
  std::vector<NodeId> leaves_;
  std::vector<NodeId> post_order_;
  std::int32_t max_depth_ = 0;
};

/// Incremental builder.  Nodes are added parent-first; finish() freezes the
/// tree and computes DFS leaf numbering and the post-order.
class HierarchyBuilder {
 public:
  /// Starts a tree with the given root name.
  explicit HierarchyBuilder(std::string root_name = "root");

  /// Adds a child under `parent` and returns its id.
  NodeId add(NodeId parent, std::string name);

  /// Convenience: adds `count` children named `prefix0..prefix(count-1)`.
  std::vector<NodeId> add_many(NodeId parent, std::string_view prefix,
                               std::int32_t count);

  /// Freezes and returns the hierarchy.  Throws InvalidArgument if any
  /// internal node has no leaf below it (every branch must reach a resource).
  [[nodiscard]] Hierarchy finish();

 private:
  Hierarchy h_;
};

/// Builds a balanced tree with `levels` internal levels and `fanout` children
/// per node (leaf count = fanout^levels).  Used by scaling benches and
/// property tests.
[[nodiscard]] Hierarchy make_balanced_hierarchy(std::int32_t levels,
                                                std::int32_t fanout,
                                                std::string root_name = "root");

/// Builds a flat hierarchy: a root with `n` leaf children.
[[nodiscard]] Hierarchy make_flat_hierarchy(std::int32_t n,
                                            std::string root_name = "root");

}  // namespace stagg
