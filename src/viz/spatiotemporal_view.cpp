#include "viz/spatiotemporal_view.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/error.hpp"

namespace stagg {
namespace {

/// Minimal ancestor of `node` whose pixel height reaches the threshold.
NodeId visible_ancestor(const Hierarchy& h, NodeId node, double row_px,
                        double min_px) {
  NodeId cur = node;
  while (h.node(cur).parent != kNoNode &&
         h.node(cur).leaf_count * row_px < min_px) {
    cur = h.node(cur).parent;
  }
  return cur;
}

/// X pixel of a slice boundary.
double slice_x(const TimeGrid& grid, SliceId boundary, double plot_x,
               double plot_w) {
  const double t0 = static_cast<double>(grid.begin());
  const double span = static_cast<double>(grid.end() - grid.begin());
  const TimeNs b = boundary >= grid.slice_count()
                       ? grid.end()
                       : grid.slice_begin(boundary);
  return plot_x + plot_w * (static_cast<double>(b) - t0) / span;
}

}  // namespace

ViewLayout layout_overview(const AggregationResult& result,
                           const DataCube& cube, const ViewOptions& options) {
  const Hierarchy& h = cube.hierarchy();
  const TimeGrid& grid = cube.model().grid();
  const std::size_t n_s = h.leaf_count();

  ViewLayout out;
  out.plot_x = 0.0;
  out.plot_y = 0.0;
  out.plot_w =
      options.width_px - (options.draw_legend ? options.legend_px : 0.0);
  out.plot_h = options.height_px - (options.draw_axis ? 24.0 : 0.0);
  const double row_px = out.plot_h / static_cast<double>(n_s);

  const auto make_tile = [&](NodeId node, SliceId i, SliceId j,
                             VisualMark mark, bool visual) {
    const auto& n = h.node(node);
    Tile tile;
    tile.x = slice_x(grid, i, out.plot_x, out.plot_w);
    tile.w = slice_x(grid, j + 1, out.plot_x, out.plot_w) - tile.x;
    tile.y = out.plot_y + n.first_leaf * row_px;
    tile.h = n.leaf_count * row_px;
    tile.node = node;
    tile.time = {i, j};
    const auto mode = cube.mode(node, i, j);
    tile.mode = mode.state;
    tile.alpha = mode.proportion_sum > 0.0
                     ? mode.proportion / mode.proportion_sum
                     : 0.0;
    tile.mark = mark;
    tile.is_visual_aggregate = visual;
    return tile;
  };

  // Partition areas into directly-drawable ones and groups folded under a
  // minimal visible ancestor.
  std::map<NodeId, std::vector<Area>> folded;
  for (const auto& a : result.partition.areas()) {
    const double height = h.node(a.node).leaf_count * row_px;
    if (options.min_row_px <= 0.0 || height >= options.min_row_px) {
      out.tiles.push_back(
          make_tile(a.node, a.time.i, a.time.j, VisualMark::kNone, false));
      ++out.stats.data_aggregates;
    } else {
      const NodeId anc =
          visible_ancestor(h, a.node, row_px, options.min_row_px);
      folded[anc].push_back(a);
      ++out.stats.hidden_aggregates;
    }
  }

  // Each folded group covers its ancestor's full leaf range over some time
  // span set; decide diagonal vs cross by comparing per-leaf temporal
  // partitions (Fig. 3.f).
  for (const auto& [anc, areas] : folded) {
    const auto& anc_node = h.node(anc);

    // Per-leaf sorted interval lists.
    std::map<LeafId, std::vector<TimeInterval>> per_leaf;
    for (const auto& a : areas) {
      const auto& n = h.node(a.node);
      for (LeafId s = n.first_leaf; s < n.first_leaf + n.leaf_count; ++s) {
        per_leaf[s].push_back(a.time);
      }
    }
    for (auto& [leaf, intervals] : per_leaf) {
      std::sort(intervals.begin(), intervals.end());
    }

    bool same = true;
    const auto& reference = per_leaf.begin()->second;
    for (const auto& [leaf, intervals] : per_leaf) {
      if (intervals != reference) {
        same = false;
        break;
      }
    }

    // Spans: the common partition when identical, otherwise the union of
    // all start boundaries.
    std::vector<SliceId> starts;
    if (same) {
      for (const auto& iv : reference) starts.push_back(iv.i);
    } else {
      for (const auto& a : areas) starts.push_back(a.time.i);
    }
    std::sort(starts.begin(), starts.end());
    starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

    const SliceId group_end = [&] {
      SliceId last = 0;
      for (const auto& a : areas) last = std::max(last, a.time.j);
      return last;
    }();

    const VisualMark mark = same ? VisualMark::kDiagonal : VisualMark::kCross;
    for (std::size_t k = 0; k < starts.size(); ++k) {
      const SliceId i = starts[k];
      const SliceId j =
          k + 1 < starts.size() ? starts[k + 1] - 1 : group_end;
      out.tiles.push_back(make_tile(anc, i, j, mark, true));
      ++out.stats.visual_aggregates;
      if (same) {
        ++out.stats.diagonal_marks;
      } else {
        ++out.stats.cross_marks;
      }
    }
    (void)anc_node;
  }

  return out;
}

SvgCanvas render_overview(const AggregationResult& result,
                          const DataCube& cube, const ViewOptions& options) {
  const ViewLayout layout = layout_overview(result, cube, options);
  const StateColorMap colors(cube.model().states());
  const TimeGrid& grid = cube.model().grid();

  SvgCanvas svg(options.width_px, options.height_px);
  svg.begin_group("tiles");
  for (const auto& tile : layout.tiles) {
    if (tile.mode == kNoState || tile.alpha <= 0.0) continue;  // idle area
    if (options.alpha_encoding == AlphaEncoding::kChromaFade) {
      svg.rect(tile.x, tile.y, tile.w, tile.h,
               chroma_fade(colors.color(tile.mode), tile.alpha), 1.0,
               /*stroke=*/true);
    } else {
      svg.rect(tile.x, tile.y, tile.w, tile.h, colors.color(tile.mode),
               tile.alpha, /*stroke=*/true);
    }
    if (tile.mark == VisualMark::kDiagonal ||
        tile.mark == VisualMark::kCross) {
      svg.line(tile.x, tile.y + tile.h, tile.x + tile.w, tile.y,
               {32, 32, 32, 255}, 0.8);
    }
    if (tile.mark == VisualMark::kCross) {
      svg.line(tile.x, tile.y, tile.x + tile.w, tile.y + tile.h,
               {32, 32, 32, 255}, 0.8);
    }
  }
  svg.end_group();

  if (options.draw_axis) {
    const double y = layout.plot_y + layout.plot_h;
    svg.line(layout.plot_x, y, layout.plot_x + layout.plot_w, y,
             {0, 0, 0, 255}, 1.0);
    for (int k = 0; k <= 4; ++k) {
      const double frac = k / 4.0;
      const double x = layout.plot_x + frac * layout.plot_w;
      const double t = to_seconds(grid.begin()) +
                       frac * to_seconds(grid.end() - grid.begin());
      char label[32];
      std::snprintf(label, sizeof label, "%.1fs", t);
      svg.line(x, y, x, y + 4, {0, 0, 0, 255}, 1.0);
      svg.text(x + 2, y + 14, label, 9.0);
    }
  }

  if (options.draw_legend) {
    const double lx = options.width_px - options.legend_px + 8.0;
    double ly = 12.0;
    for (StateId x = 0; x < cube.state_count(); ++x) {
      svg.rect(lx, ly - 8, 10, 10, colors.color(x), 1.0, true);
      svg.text(lx + 14, ly, cube.model().states().name(x), 9.0);
      ly += 14.0;
    }
  }
  return svg;
}

ViewStats save_overview(const AggregationResult& result, const DataCube& cube,
                        const std::string& path, const ViewOptions& options) {
  const ViewLayout layout = layout_overview(result, cube, options);
  render_overview(result, cube, options).save(path);
  return layout.stats;
}

}  // namespace stagg
