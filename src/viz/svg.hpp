// Minimal SVG document writer: the library's rendering backend.
//
// Only the primitives the views need: rectangles, lines, text.  Coordinates
// are in CSS pixels; the canvas clips nothing (views stay in bounds).
#pragma once

#include <string>

#include "viz/color.hpp"

namespace stagg {

/// Builds an SVG document incrementally; str() finalizes it.
class SvgCanvas {
 public:
  SvgCanvas(double width, double height);

  [[nodiscard]] double width() const noexcept { return width_; }
  [[nodiscard]] double height() const noexcept { return height_; }

  /// Filled rectangle with optional opacity and hairline stroke.
  void rect(double x, double y, double w, double h, Rgba fill,
            double opacity = 1.0, bool stroke = false);

  void line(double x1, double y1, double x2, double y2, Rgba color,
            double width = 1.0);

  /// Left-anchored text at baseline (x, y).
  void text(double x, double y, const std::string& content,
            double font_size = 10.0, Rgba color = {0, 0, 0, 255});

  /// Starts/ends a named group (for diffable output).
  void begin_group(const std::string& id);
  void end_group();

  /// Number of drawable elements emitted so far.
  [[nodiscard]] std::size_t element_count() const noexcept {
    return elements_;
  }

  /// Full document.
  [[nodiscard]] std::string str() const;

  /// Writes the document to a file; throws IoError.
  void save(const std::string& path) const;

 private:
  double width_, height_;
  std::string body_;
  std::size_t elements_ = 0;
};

/// Escapes &, <, > for SVG text nodes.
[[nodiscard]] std::string svg_escape(const std::string& s);

}  // namespace stagg
