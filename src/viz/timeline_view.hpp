// 1-D temporal overview — the original Ocelotl timeline of refs [11], [12]
// (Table I row 6): an information-aggregated partition of time only, with
// space integrated away.  Each interval is drawn as a column whose stacked
// sub-bars show the aggregated state proportions.
#pragma once

#include <string>

#include "core/temporal.hpp"
#include "viz/svg.hpp"

namespace stagg {

struct TimelineOptions {
  double width_px = 1200.0;
  double height_px = 160.0;
};

/// Renders the temporal partition as stacked proportion columns.
[[nodiscard]] SvgCanvas render_timeline(const SequenceAggregator::Result& r,
                                        const DataCube& cube,
                                        const TimelineOptions& options = {});

}  // namespace stagg
