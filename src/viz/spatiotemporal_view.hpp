// The overview visualization of §IV: renders an aggregation result as the
// Ocelotl-style mosaic — one tile per data aggregate, colored by the mode
// state at opacity alpha = rho_max / sum rho — plus the *visual aggregation*
// pass that enforces the spatial entity budget (G1): a data aggregate whose
// tile is under `min_row_px` is replaced by its nearest ancestor tall
// enough, and the replacement tile is marked with a diagonal when all
// hidden resources share the same temporal partitioning, with a cross
// otherwise (Fig. 3.f).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregator.hpp"
#include "viz/svg.hpp"

namespace stagg {

/// Visual-aggregate marks of Fig. 3.f.
enum class VisualMark : std::uint8_t {
  kNone,      ///< plain data aggregate
  kDiagonal,  ///< hidden resources share one temporal partition
  kCross,     ///< hidden resources disagree on temporal cuts
};

/// One rendered tile, in pixel coordinates.
struct Tile {
  double x = 0, y = 0, w = 0, h = 0;
  NodeId node = kNoNode;
  TimeInterval time;
  StateId mode = kNoState;
  double alpha = 1.0;
  VisualMark mark = VisualMark::kNone;
  bool is_visual_aggregate = false;
};

/// Render statistics: the counts Fig. 3.f reports ("21 data aggregates and
/// 7 visual aggregates").
struct ViewStats {
  std::size_t data_aggregates = 0;     ///< partition areas drawn directly
  std::size_t visual_aggregates = 0;   ///< replacement tiles drawn
  std::size_t hidden_aggregates = 0;   ///< areas folded into visual tiles
  std::size_t diagonal_marks = 0;
  std::size_t cross_marks = 0;
};

/// How the mode-dominance value alpha is encoded on screen (§IV uses
/// opacity; §VI proposes a chroma encoding in YCbCr whose perceived effect
/// does not depend on the state's hue).
enum class AlphaEncoding : std::uint8_t {
  kOpacity,     ///< SVG fill-opacity = alpha (the paper's §IV rendering)
  kChromaFade,  ///< constant luma, chroma scaled by alpha (§VI proposal)
};

struct ViewOptions {
  double width_px = 1200.0;
  double height_px = 600.0;
  double min_row_px = 3.0;   ///< visual-aggregation threshold (0 disables)
  bool draw_axis = true;
  bool draw_legend = true;
  double legend_px = 120.0;  ///< horizontal space reserved for the legend
  AlphaEncoding alpha_encoding = AlphaEncoding::kOpacity;
};

/// Computed layout: tiles + stats, independent of the output backend.
struct ViewLayout {
  std::vector<Tile> tiles;
  ViewStats stats;
  double plot_x = 0, plot_y = 0, plot_w = 0, plot_h = 0;
};

/// Lays the aggregation result out on a pixel canvas.  Resource rows follow
/// DFS leaf order (so hierarchy siblings are adjacent); time maps linearly
/// to the x axis.
[[nodiscard]] ViewLayout layout_overview(const AggregationResult& result,
                                         const DataCube& cube,
                                         const ViewOptions& options = {});

/// Renders the layout to SVG (tiles, marks, axis, state legend).
[[nodiscard]] SvgCanvas render_overview(const AggregationResult& result,
                                        const DataCube& cube,
                                        const ViewOptions& options = {});

/// Convenience: render and save.
ViewStats save_overview(const AggregationResult& result, const DataCube& cube,
                        const std::string& path,
                        const ViewOptions& options = {});

}  // namespace stagg
