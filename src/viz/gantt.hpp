// Classic Gantt-chart rendering and its clutter diagnosis (paper Fig. 2).
//
// Draws every state interval of a trace as one rectangle per (resource,
// state) — the representation the paper shows collapsing at scale — and
// measures *why* it collapses: how many objects land under one pixel wide,
// how many objects pile onto each pixel column, and how much of the trace
// the renderer is forced to drop once an object budget is imposed.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.hpp"
#include "viz/svg.hpp"

namespace stagg {

struct GanttOptions {
  double width_px = 1600.0;
  double height_px = 800.0;
  /// Window to draw; {0,0} = whole trace.  Fig. 2 draws 1/7 of the trace.
  TimeNs window_begin = 0;
  TimeNs window_end = 0;
  /// Hard cap on emitted SVG rects (0 = unlimited).  Objects beyond the
  /// budget are *counted* but not drawn — the pixel-guided tools' silent
  /// dropping, made explicit.
  std::size_t object_budget = 200'000;
};

/// Clutter metrics of a Gantt rendering (the quantified Fig. 2 argument).
struct GanttStats {
  std::size_t objects_total = 0;      ///< states in the window
  std::size_t objects_drawn = 0;      ///< emitted (within budget)
  std::size_t objects_subpixel = 0;   ///< width < 1 px
  std::size_t objects_dropped = 0;    ///< beyond the object budget
  double mean_objects_per_column = 0; ///< overdraw: states per pixel column
  double max_objects_per_column = 0;
  double mean_object_width_px = 0;

  [[nodiscard]] double subpixel_fraction() const noexcept {
    return objects_total
               ? static_cast<double>(objects_subpixel) /
                     static_cast<double>(objects_total)
               : 0.0;
  }
};

/// Renders the Gantt chart and computes clutter statistics.
struct GanttRendering {
  SvgCanvas svg;
  GanttStats stats;
};
[[nodiscard]] GanttRendering render_gantt(Trace& trace,
                                          const GanttOptions& options = {});

/// Metrics only — no SVG body is built (fast path for the Fig. 2 bench at
/// full event counts).
[[nodiscard]] GanttStats gantt_stats(Trace& trace,
                                     const GanttOptions& options = {});

}  // namespace stagg
