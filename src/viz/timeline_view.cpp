#include "viz/timeline_view.hpp"

namespace stagg {

SvgCanvas render_timeline(const SequenceAggregator::Result& r,
                          const DataCube& cube,
                          const TimelineOptions& options) {
  const StateColorMap colors(cube.model().states());
  const std::int32_t n_t = cube.slice_count();
  const NodeId root = cube.hierarchy().root();

  SvgCanvas svg(options.width_px, options.height_px);
  svg.begin_group("timeline");
  for (const auto& iv : r.intervals) {
    const double x0 = options.width_px * iv.i / n_t;
    const double x1 = options.width_px * (iv.j + 1) / n_t;
    // Stack the aggregated proportions bottom-up.
    double level = options.height_px;
    for (StateId x = 0; x < cube.state_count(); ++x) {
      const double rho = cube.aggregated_proportion(root, iv.i, iv.j, x);
      const double h = rho * options.height_px;
      if (h <= 0.0) continue;
      level -= h;
      svg.rect(x0, level, x1 - x0, h, colors.color(x), 1.0, false);
    }
    svg.line(x0, 0, x0, options.height_px, {160, 160, 160, 255}, 0.5);
  }
  svg.end_group();
  return svg;
}

}  // namespace stagg
