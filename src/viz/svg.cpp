#include "viz/svg.hpp"

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace stagg {

namespace {
void append_num(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  out += buf;
}
}  // namespace

std::string svg_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

SvgCanvas::SvgCanvas(double width, double height)
    : width_(width), height_(height) {}

void SvgCanvas::rect(double x, double y, double w, double h, Rgba fill,
                     double opacity, bool stroke) {
  body_ += "<rect x=\"";
  append_num(body_, x);
  body_ += "\" y=\"";
  append_num(body_, y);
  body_ += "\" width=\"";
  append_num(body_, w);
  body_ += "\" height=\"";
  append_num(body_, h);
  body_ += "\" fill=\"" + fill.hex_rgb() + "\"";
  if (opacity < 1.0) {
    body_ += " fill-opacity=\"";
    append_num(body_, opacity);
    body_ += "\"";
  }
  if (stroke) {
    body_ += " stroke=\"#404040\" stroke-width=\"0.5\"";
  }
  body_ += "/>\n";
  ++elements_;
}

void SvgCanvas::line(double x1, double y1, double x2, double y2, Rgba color,
                     double width) {
  body_ += "<line x1=\"";
  append_num(body_, x1);
  body_ += "\" y1=\"";
  append_num(body_, y1);
  body_ += "\" x2=\"";
  append_num(body_, x2);
  body_ += "\" y2=\"";
  append_num(body_, y2);
  body_ += "\" stroke=\"" + color.hex_rgb() + "\" stroke-width=\"";
  append_num(body_, width);
  body_ += "\"/>\n";
  ++elements_;
}

void SvgCanvas::text(double x, double y, const std::string& content,
                     double font_size, Rgba color) {
  body_ += "<text x=\"";
  append_num(body_, x);
  body_ += "\" y=\"";
  append_num(body_, y);
  body_ += "\" font-size=\"";
  append_num(body_, font_size);
  body_ += "\" font-family=\"sans-serif\" fill=\"" + color.hex_rgb() + "\">" +
           svg_escape(content) + "</text>\n";
  ++elements_;
}

void SvgCanvas::begin_group(const std::string& id) {
  body_ += "<g id=\"" + svg_escape(id) + "\">\n";
}

void SvgCanvas::end_group() { body_ += "</g>\n"; }

std::string SvgCanvas::str() const {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"";
  append_num(out, width_);
  out += "\" height=\"";
  append_num(out, height_);
  out += "\" viewBox=\"0 0 ";
  append_num(out, width_);
  out += " ";
  append_num(out, height_);
  out += "\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  out += body_;
  out += "</svg>\n";
  return out;
}

void SvgCanvas::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open '" + path + "' for writing");
  os << str();
  if (!os) throw IoError("short write to '" + path + "'");
}

}  // namespace stagg
