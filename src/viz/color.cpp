#include "viz/color.hpp"

#include <array>
#include <cstdio>
#include <utility>

namespace stagg {

std::string Rgba::hex_rgb() const {
  char buf[8];
  std::snprintf(buf, sizeof buf, "#%02x%02x%02x", r, g, b);
  return buf;
}

Rgba blend_over_white(Rgba fg, double alpha) noexcept {
  const auto mix = [alpha](std::uint8_t c) {
    const double v = alpha * c + (1.0 - alpha) * 255.0;
    return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  };
  return Rgba{mix(fg.r), mix(fg.g), mix(fg.b), 255};
}

namespace {

std::uint8_t clamp_channel(double v) noexcept {
  return static_cast<std::uint8_t>(v < 0.0 ? 0.0 : (v > 255.0 ? 255.0 : v));
}

}  // namespace

Ycbcr rgb_to_ycbcr(Rgba c) noexcept {
  // BT.601 full-range conversion.
  const double r = c.r, g = c.g, b = c.b;
  return Ycbcr{
      0.299 * r + 0.587 * g + 0.114 * b,
      128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b,
      128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b,
  };
}

Rgba ycbcr_to_rgb(const Ycbcr& c) noexcept {
  const double cb = c.cb - 128.0;
  const double cr = c.cr - 128.0;
  return Rgba{
      clamp_channel(c.y + 1.402 * cr),
      clamp_channel(c.y - 0.344136 * cb - 0.714136 * cr),
      clamp_channel(c.y + 1.772 * cb),
      255,
  };
}

Rgba chroma_fade(Rgba color, double certainty) noexcept {
  const double k = certainty < 0.0 ? 0.0 : (certainty > 1.0 ? 1.0 : certainty);
  Ycbcr y = rgb_to_ycbcr(color);
  y.cb = 128.0 + (y.cb - 128.0) * k;
  y.cr = 128.0 + (y.cr - 128.0) * k;
  return ycbcr_to_rgb(y);
}

namespace {

// The hues visible in the paper's Figure 1 plus common MPI states.
constexpr std::pair<std::string_view, Rgba> kWellKnown[] = {
    {"MPI_Init", {240, 200, 0, 255}},       // yellow
    {"MPI_Send", {60, 160, 60, 255}},       // green
    {"MPI_Wait", {205, 50, 40, 255}},       // red
    {"MPI_Recv", {60, 100, 190, 255}},      // blue
    {"MPI_Allreduce", {150, 60, 170, 255}}, // purple
    {"MPI_Irecv", {90, 170, 200, 255}},
    {"MPI_Isend", {120, 200, 120, 255}},
    {"MPI_Finalize", {120, 120, 120, 255}},
    {"Compute", {170, 170, 170, 255}},      // gray
};

constexpr Rgba kPalette[] = {
    {31, 119, 180, 255},  {255, 127, 14, 255},  {44, 160, 44, 255},
    {214, 39, 40, 255},   {148, 103, 189, 255}, {140, 86, 75, 255},
    {227, 119, 194, 255}, {127, 127, 127, 255}, {188, 189, 34, 255},
    {23, 190, 207, 255},  {174, 199, 232, 255}, {255, 187, 120, 255},
};

}  // namespace

const Rgba* StateColorMap::well_known(std::string_view name) {
  for (const auto& [known, color] : kWellKnown) {
    if (known == name) return &color;
  }
  return nullptr;
}

StateColorMap::StateColorMap(const StateRegistry& states) {
  colors_.reserve(states.size());
  std::size_t next_palette = 0;
  for (const auto& name : states.names()) {
    if (const Rgba* c = well_known(name)) {
      colors_.push_back(*c);
    } else {
      colors_.push_back(kPalette[next_palette % std::size(kPalette)]);
      ++next_palette;
    }
  }
}

}  // namespace stagg
