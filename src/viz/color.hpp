// State colors and the transparency encoding of §IV.
//
// Each state x gets a color; an aggregate shows its *mode* state (argmax of
// the aggregated proportions) at opacity alpha = rho_max / sum_x rho_x,
// which lies in [1/|X|, 1] — a faint tile means the mode barely dominates.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/state_registry.hpp"

namespace stagg {

/// 8-bit RGBA color.
struct Rgba {
  std::uint8_t r = 0, g = 0, b = 0, a = 255;

  [[nodiscard]] std::string hex_rgb() const;  ///< "#rrggbb"
  friend constexpr bool operator==(const Rgba&, const Rgba&) = default;
};

/// Alpha-composites `fg` at `alpha` over an opaque white background
/// (how an SVG viewer shows our tiles); used by ASCII shading.
[[nodiscard]] Rgba blend_over_white(Rgba fg, double alpha) noexcept;

/// YCbCr (BT.601) color value; the alternative encoding the paper's §VI
/// proposes: transparency perception depends on the hue, whereas scaling
/// the *chroma* at constant luma fades all states uniformly.
struct Ycbcr {
  double y = 0.0;   ///< luma in [0, 255]
  double cb = 0.0;  ///< blue-difference chroma, centered on 128
  double cr = 0.0;  ///< red-difference chroma, centered on 128
};

[[nodiscard]] Ycbcr rgb_to_ycbcr(Rgba c) noexcept;
[[nodiscard]] Rgba ycbcr_to_rgb(const Ycbcr& c) noexcept;

/// §VI's encoding: keeps the luma, scales the chroma by `certainty` in
/// [0, 1] (1 = full color, 0 = gray of the same brightness).
[[nodiscard]] Rgba chroma_fade(Rgba color, double certainty) noexcept;

/// Maps state names to colors: well-known MPI states get the paper's hues
/// (MPI_Init yellow, MPI_Send green, MPI_Wait red, ...); anything else is
/// assigned from a 12-color qualitative palette by registration order.
class StateColorMap {
 public:
  explicit StateColorMap(const StateRegistry& states);

  [[nodiscard]] Rgba color(StateId x) const {
    return colors_[static_cast<std::size_t>(x)];
  }
  [[nodiscard]] std::size_t size() const noexcept { return colors_.size(); }

  /// Fixed color of a known state name, if any.
  [[nodiscard]] static const Rgba* well_known(std::string_view name);

 private:
  std::vector<Rgba> colors_;
};

}  // namespace stagg
