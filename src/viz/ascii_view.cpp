#include "viz/ascii_view.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace stagg {

std::string render_ascii(const AggregationResult& result, const DataCube& cube,
                         const AsciiOptions& options) {
  const Hierarchy& h = cube.hierarchy();
  const std::int32_t n_t = cube.slice_count();
  const std::size_t n_s = h.leaf_count();

  // Map every microscopic cell to its area index.
  std::vector<std::int32_t> owner(n_s * static_cast<std::size_t>(n_t), -1);
  const auto& areas = result.partition.areas();
  for (std::size_t k = 0; k < areas.size(); ++k) {
    const auto& a = areas[k];
    const auto& n = h.node(a.node);
    for (LeafId s = n.first_leaf; s < n.first_leaf + n.leaf_count; ++s) {
      for (SliceId t = a.time.i; t <= a.time.j; ++t) {
        owner[static_cast<std::size_t>(s) * n_t + static_cast<std::size_t>(t)] =
            static_cast<std::int32_t>(k);
      }
    }
  }

  // Pre-compute area modes and whether the area is aggregated.
  std::vector<char> mode_char(areas.size(), '.');
  for (std::size_t k = 0; k < areas.size(); ++k) {
    const auto& a = areas[k];
    const auto mode = cube.mode(a.node, a.time.i, a.time.j);
    if (mode.state == kNoState || mode.proportion_sum <= 0.0) {
      mode_char[k] = '.';
      continue;
    }
    const bool aggregated =
        h.node(a.node).leaf_count > 1 || a.time.length() > 1;
    const char base = static_cast<char>('a' + (mode.state % 26));
    mode_char[k] =
        aggregated ? static_cast<char>(base - 'a' + 'A') : base;
  }

  std::size_t path_width = 0;
  if (options.show_paths) {
    for (std::size_t s = 0; s < std::min(n_s, options.max_rows); ++s) {
      path_width = std::max(
          path_width, h.path(h.leaf_node(static_cast<LeafId>(s))).size());
    }
  }

  std::ostringstream os;
  const std::size_t rows = std::min(n_s, options.max_rows);
  for (std::size_t s = 0; s < rows; ++s) {
    if (options.show_paths) {
      const std::string p = h.path(h.leaf_node(static_cast<LeafId>(s)));
      os << p << std::string(path_width - p.size() + 1, ' ');
    }
    std::int32_t prev = -1;
    for (SliceId t = 0; t < n_t; ++t) {
      const std::int32_t k = owner[s * static_cast<std::size_t>(n_t) +
                                   static_cast<std::size_t>(t)];
      if (options.show_cuts && t > 0 && k != prev) {
        os << '|';
      } else if (options.show_cuts && t > 0) {
        os << ' ';
      }
      os << (k >= 0 ? mode_char[static_cast<std::size_t>(k)] : '?');
      prev = k;
    }
    os << '\n';
  }
  if (rows < n_s) {
    os << "... (" << (n_s - rows) << " more rows)\n";
  }
  return os.str();
}

}  // namespace stagg
