#include "viz/treemap.hpp"

#include <algorithm>
#include <cmath>

namespace stagg {
namespace {

struct Item {
  NodeId node;
  double weight;
};

/// Squarified layout (Bruls et al.): lays `items` (sorted descending) into
/// the rectangle, row by row along the shorter side.
void squarify(std::vector<Item> items, double x, double y, double w, double h,
              double padding, const DataCube& cube,
              std::vector<TreemapCell>& out) {
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.weight > b.weight; });
  double total = 0.0;
  for (const auto& it : items) total += it.weight;
  if (total <= 0.0 || items.empty()) return;
  const double scale = (w * h) / total;

  std::size_t begin = 0;
  while (begin < items.size()) {
    const bool horizontal = w >= h;  // row along the shorter side
    const double side = horizontal ? h : w;

    // Grow the row while the worst aspect ratio improves.
    double row_sum = 0.0;
    double row_max = 0.0, row_min = 1e300;
    std::size_t end = begin;
    double best_worst = 1e300;
    while (end < items.size()) {
      const double a = items[end].weight * scale;
      const double nsum = row_sum + a;
      const double nmax = std::max(row_max, a);
      const double nmin = std::min(row_min, a);
      const double worst = std::max(side * side * nmax / (nsum * nsum),
                                    nsum * nsum / (side * side * nmin));
      if (worst > best_worst && end > begin) break;
      best_worst = worst;
      row_sum = nsum;
      row_max = nmax;
      row_min = nmin;
      ++end;
    }

    const double thickness = row_sum / side;
    double offset = 0.0;
    for (std::size_t k = begin; k < end; ++k) {
      const double a = items[k].weight * scale;
      const double len = a / thickness;
      TreemapCell cell;
      if (horizontal) {
        cell.x = x;
        cell.y = y + offset;
        cell.w = thickness;
        cell.h = len;
      } else {
        cell.x = x + offset;
        cell.y = y;
        cell.w = len;
        cell.h = thickness;
      }
      cell.x += padding / 2;
      cell.y += padding / 2;
      cell.w = std::max(0.0, cell.w - padding);
      cell.h = std::max(0.0, cell.h - padding);
      cell.node = items[k].node;
      const auto mode =
          cube.mode(items[k].node, 0, cube.slice_count() - 1);
      cell.mode = mode.state;
      cell.alpha = mode.proportion_sum > 0.0
                       ? mode.proportion / mode.proportion_sum
                       : 0.0;
      out.push_back(cell);
      offset += len;
    }
    if (horizontal) {
      x += thickness;
      w -= thickness;
    } else {
      y += thickness;
      h -= thickness;
    }
    begin = end;
  }
}

}  // namespace

std::vector<TreemapCell> layout_treemap(
    const HierarchyAggregator::Result& spatial, const DataCube& cube,
    const TreemapOptions& options) {
  std::vector<Item> items;
  items.reserve(spatial.parts.size());
  for (NodeId n : spatial.parts) {
    items.push_back(
        {n, static_cast<double>(cube.hierarchy().node(n).leaf_count)});
  }
  std::vector<TreemapCell> out;
  squarify(std::move(items), 0.0, 0.0, options.width_px, options.height_px,
           options.padding_px, cube, out);
  return out;
}

SvgCanvas render_treemap(const HierarchyAggregator::Result& spatial,
                         const DataCube& cube, const TreemapOptions& options) {
  const auto cells = layout_treemap(spatial, cube, options);
  const StateColorMap colors(cube.model().states());
  SvgCanvas svg(options.width_px, options.height_px);
  svg.begin_group("treemap");
  for (const auto& cell : cells) {
    if (cell.mode == kNoState) continue;
    svg.rect(cell.x, cell.y, cell.w, cell.h, colors.color(cell.mode),
             cell.alpha, /*stroke=*/true);
  }
  svg.end_group();
  return svg;
}

}  // namespace stagg
