// Terminal rendering of an aggregation result.
//
// One character cell per (leaf, slice): the letter of the area's mode state
// (A, B, C... by state id), uppercase when the cell belongs to a
// multi-cell aggregate and lowercase when it is microscopic.  Vertical bars
// mark temporal cuts of the row.  Used by the examples and as a
// deterministic golden format in tests.
#pragma once

#include <string>

#include "core/aggregator.hpp"

namespace stagg {

struct AsciiOptions {
  bool show_paths = true;    ///< prefix each row with the leaf path
  bool show_cuts = true;     ///< draw '|' at row-local temporal boundaries
  std::size_t max_rows = 64; ///< clip large hierarchies ("..." footer)
};

/// Renders the partition grid as text.
[[nodiscard]] std::string render_ascii(const AggregationResult& result,
                                       const DataCube& cube,
                                       const AsciiOptions& options = {});

}  // namespace stagg
