// Squarified treemap of a spatial (hierarchy-consistent) partition — the
// Viva baseline of Table I (row 8): space is represented hierarchically,
// time is integrated away (M1 unmet, M2 met), which is exactly what the
// Table I bench demonstrates against our spatiotemporal view.
#pragma once

#include <string>
#include <vector>

#include "core/spatial.hpp"
#include "viz/svg.hpp"

namespace stagg {

struct TreemapOptions {
  double width_px = 600.0;
  double height_px = 600.0;
  double padding_px = 1.0;
};

/// One laid-out treemap cell.
struct TreemapCell {
  double x = 0, y = 0, w = 0, h = 0;
  NodeId node = kNoNode;
  StateId mode = kNoState;
  double alpha = 1.0;
};

/// Lays out the parts of a spatial aggregation; each part's cell area is
/// proportional to its resource count (fidelity criterion G5), colored by
/// its mode state over the whole window.
[[nodiscard]] std::vector<TreemapCell> layout_treemap(
    const HierarchyAggregator::Result& spatial, const DataCube& cube,
    const TreemapOptions& options = {});

/// Renders the layout to SVG.
[[nodiscard]] SvgCanvas render_treemap(
    const HierarchyAggregator::Result& spatial, const DataCube& cube,
    const TreemapOptions& options = {});

}  // namespace stagg
