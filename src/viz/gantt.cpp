#include "viz/gantt.hpp"

#include <algorithm>
#include <vector>

namespace stagg {
namespace {

struct Window {
  TimeNs begin, end;
};

Window effective_window(const Trace& trace, const GanttOptions& options) {
  if (options.window_begin == 0 && options.window_end == 0) {
    return {trace.begin(), trace.end()};
  }
  return {options.window_begin, options.window_end};
}

}  // namespace

GanttStats gantt_stats(Trace& trace, const GanttOptions& options) {
  trace.seal();
  const Window win = effective_window(trace, options);
  const double span = static_cast<double>(win.end - win.begin);
  GanttStats stats;
  if (span <= 0.0) return stats;

  const std::size_t columns = static_cast<std::size_t>(options.width_px);
  std::vector<std::uint32_t> column_load(columns, 0);
  double width_sum = 0.0;

  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    for (const auto& s : trace.intervals(r)) {
      if (s.end <= win.begin || s.begin >= win.end) continue;
      ++stats.objects_total;
      const TimeNs lo = std::max(s.begin, win.begin);
      const TimeNs hi = std::min(s.end, win.end);
      const double x0 = (static_cast<double>(lo - win.begin) / span) *
                        options.width_px;
      const double x1 = (static_cast<double>(hi - win.begin) / span) *
                        options.width_px;
      const double w = x1 - x0;
      width_sum += w;
      if (w < 1.0) ++stats.objects_subpixel;
      const std::size_t c0 = static_cast<std::size_t>(
          std::clamp(x0, 0.0, options.width_px - 1.0));
      const std::size_t c1 = static_cast<std::size_t>(
          std::clamp(x1, 0.0, options.width_px - 1.0));
      for (std::size_t c = c0; c <= c1 && c < columns; ++c) ++column_load[c];
    }
  }

  if (stats.objects_total > 0) {
    stats.mean_object_width_px =
        width_sum / static_cast<double>(stats.objects_total);
  }
  double sum = 0.0, mx = 0.0;
  for (std::uint32_t load : column_load) {
    sum += load;
    mx = std::max(mx, static_cast<double>(load));
  }
  stats.mean_objects_per_column =
      columns ? sum / static_cast<double>(columns) : 0.0;
  stats.max_objects_per_column = mx;
  if (options.object_budget > 0 &&
      stats.objects_total > options.object_budget) {
    stats.objects_dropped = stats.objects_total - options.object_budget;
    stats.objects_drawn = options.object_budget;
  } else {
    stats.objects_drawn = stats.objects_total;
  }
  return stats;
}

GanttRendering render_gantt(Trace& trace, const GanttOptions& options) {
  trace.seal();
  const Window win = effective_window(trace, options);
  const double span = static_cast<double>(win.end - win.begin);
  const StateColorMap colors(trace.states());

  GanttRendering out{SvgCanvas(options.width_px, options.height_px),
                     gantt_stats(trace, options)};
  if (span <= 0.0 || trace.resource_count() == 0) return out;

  const double row_h =
      options.height_px / static_cast<double>(trace.resource_count());
  std::size_t emitted = 0;
  out.svg.begin_group("gantt");
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    const double y = r * row_h;
    for (const auto& s : trace.intervals(r)) {
      if (s.end <= win.begin || s.begin >= win.end) continue;
      if (options.object_budget > 0 && emitted >= options.object_budget) {
        break;
      }
      const TimeNs lo = std::max(s.begin, win.begin);
      const TimeNs hi = std::min(s.end, win.end);
      const double x0 =
          (static_cast<double>(lo - win.begin) / span) * options.width_px;
      const double x1 =
          (static_cast<double>(hi - win.begin) / span) * options.width_px;
      out.svg.rect(x0, y, std::max(x1 - x0, 0.05), row_h * 0.9,
                   colors.color(s.state));
      ++emitted;
    }
  }
  out.svg.end_group();
  return out;
}

}  // namespace stagg
