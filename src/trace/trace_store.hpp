// Immutable chunked trace storage — the shared substrate of multi-session
// analysis servers (dariadb-style chunk files: sealed columnar pages that
// can live in memory or on disk).
//
// A TraceStore holds, per resource, a list of *sealed* chunks — immutable,
// columnar (SoA) runs of state intervals sorted by (begin, end, state),
// each carrying min/max-time fences — plus one small mutable append tail.
// seal_chunk() sorts every non-empty tail and freezes it into a new chunk;
// evict_before() drops whole chunks whose fence proves they can never
// overlap a window starting at the cutoff.  Sealed chunks are held by
// shared_ptr and never mutated: any number of TraceView readers (windows,
// hierarchy scopes, concurrent sessions) share them zero-copy, and
// compaction or eviction in the store simply unlinks chunks that outstanding
// views keep alive.
//
// Storage backends: a sealed chunk's payload is polymorphic (ChunkPayload).
// The resident backend owns its columns as heap vectors; the file-backed
// backend exposes the columns of an mmapped chunk-file record in place
// (common/mapped_file.hpp), so a spilled chunk costs reclaimable page-cache
// pages instead of anonymous heap; the compressed backend (resident or
// file-backed) holds delta/dictionary-encoded column blocks
// (trace/compression.hpp) that ChunkCursor streaming-decodes — never
// materialising whole columns — when set_compression enables the policy.
// spill_cold() rewrites the coldest resident chunks (ascending fence
// max-end — an LRU over trace time) to the store's spill file and swaps in
// mapped payloads until the resident chunk bytes fit a budget; pin() swaps
// a resource's spilled chunks back to resident copies.  Both swap *chunk
// pointers*, never chunk contents, so an outstanding TraceView — which
// pinned its chunks by reference at selection — keeps streaming its
// snapshot bit-identically through a mid-stream spill, pin, eviction or
// compaction.  All byte accounting (resident_chunk_bytes, store_bytes)
// counts *stored* bytes: encoded size for compressed chunks, so budget
// math sees the real footprint.
//
// Ordering contract: chunks are sorted by the *total* key (begin, end,
// state).  Intervals with identical keys are indistinguishable to every
// consumer (they fold the same mass into the same model cell), so the
// merged per-resource sequence — and therefore every model fold — is a pure
// function of the interval multiset, independent of how the intervals were
// partitioned into chunks.  This is what makes an N-chunk shared store
// bit-identical to a freshly sorted single-owner trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mapped_file.hpp"
#include "trace/compression.hpp"
#include "trace/event.hpp"
#include "trace/state_registry.hpp"

namespace stagg {

/// Total sort key of the chunked trace layer: (begin, end, state).
/// Strict-weak and *total up to indistinguishability* — equal keys mean
/// equal intervals — so merges of separately sorted chunks are
/// layout-independent.
[[nodiscard]] inline bool interval_key_less(const StateInterval& a,
                                            const StateInterval& b) noexcept {
  if (a.begin != b.begin) return a.begin < b.begin;
  if (a.end != b.end) return a.end < b.end;
  return a.state < b.state;
}

/// Backend of one sealed chunk's columns.  Implementations hold three
/// parallel columns sorted by (begin, end, state); they are immutable for
/// the payload's lifetime.  Addressable backends expose the columns as
/// spans; the compressed backend exposes encoded blocks instead and is
/// read through ChunkCursor's streaming decode.
class ChunkPayload {
 public:
  virtual ~ChunkPayload() = default;
  ChunkPayload(const ChunkPayload&) = delete;
  ChunkPayload& operator=(const ChunkPayload&) = delete;

  /// Column spans; empty for non-addressable (compressed) backends.
  [[nodiscard]] virtual std::span<const TimeNs> begins() const noexcept = 0;
  [[nodiscard]] virtual std::span<const TimeNs> ends() const noexcept = 0;
  [[nodiscard]] virtual std::span<const StateId> states() const noexcept = 0;

  /// Number of intervals (all backends, addressable or not).
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// True when the columns can be read in place through the spans (resident
  /// heap vectors, mapped raw records); false for compressed blocks, which
  /// only support cursor streaming.
  [[nodiscard]] virtual bool addressable() const noexcept { return true; }

  /// True when the backing memory is anonymous heap owned by this payload
  /// (it counts against a resident-byte budget); false for file-backed
  /// payloads, whose pages the OS loads and reclaims on demand.
  [[nodiscard]] virtual bool resident() const noexcept = 0;

  /// Actual storage footprint: encoded bytes for compressed payloads,
  /// the raw column bytes otherwise.  This — not the logical size — is
  /// what every budget and accounting sums.
  [[nodiscard]] virtual std::size_t stored_bytes() const noexcept {
    return bytes();
  }

  /// Forwards paging advice to the backing mapped region; no-op for
  /// resident backends and where madvise is unsupported.
  virtual void advise(MapAdvice /*advice*/) const noexcept {}

  /// Logical payload bytes of the three columns (backend-independent).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return size() * (sizeof(TimeNs) * 2 + sizeof(StateId));
  }

 protected:
  ChunkPayload() = default;
};

/// Heap-vector backend (the seal/compaction/pin path).
class ResidentChunkPayload final : public ChunkPayload {
 public:
  ResidentChunkPayload(std::vector<TimeNs> begins, std::vector<TimeNs> ends,
                       std::vector<StateId> states) noexcept
      : begins_(std::move(begins)),
        ends_(std::move(ends)),
        states_(std::move(states)) {}

  [[nodiscard]] std::span<const TimeNs> begins() const noexcept override {
    return begins_;
  }
  [[nodiscard]] std::span<const TimeNs> ends() const noexcept override {
    return ends_;
  }
  [[nodiscard]] std::span<const StateId> states() const noexcept override {
    return states_;
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return begins_.size();
  }
  [[nodiscard]] bool resident() const noexcept override { return true; }

 private:
  std::vector<TimeNs> begins_;
  std::vector<TimeNs> ends_;
  std::vector<StateId> states_;
};

/// File-backed backend: columns point into a chunk-file record mapped by a
/// shared MappedRegion (binary_io.hpp owns the on-disk format and builds
/// these after validating section bounds, checksum and sort order).  The
/// payload keeps its region alive, so a chunk stays readable after the
/// store unlinks it — or even after the spill file is unlinked.
class MappedChunkPayload final : public ChunkPayload {
 public:
  MappedChunkPayload(std::shared_ptr<const MappedRegion> region,
                     std::span<const TimeNs> begins,
                     std::span<const TimeNs> ends,
                     std::span<const StateId> states) noexcept
      : region_(std::move(region)),
        begins_(begins),
        ends_(ends),
        states_(states) {}

  [[nodiscard]] std::span<const TimeNs> begins() const noexcept override {
    return begins_;
  }
  [[nodiscard]] std::span<const TimeNs> ends() const noexcept override {
    return ends_;
  }
  [[nodiscard]] std::span<const StateId> states() const noexcept override {
    return states_;
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return begins_.size();
  }
  [[nodiscard]] bool resident() const noexcept override { return false; }
  void advise(MapAdvice advice) const noexcept override {
    region_->advise(advice);
  }

 private:
  std::shared_ptr<const MappedRegion> region_;
  std::span<const TimeNs> begins_;
  std::span<const TimeNs> ends_;
  std::span<const StateId> states_;
};

/// Compressed backend: the three columns live as self-describing encoded
/// blocks (trace/compression.hpp) — either in an owned heap buffer
/// (compressed-resident, the seal-time compression policy) or pointing
/// into a mapped STGC v2 record (compressed file-backed).  Not
/// addressable: readers stream it through ChunkCursor, whose fixed-size
/// decoder state is the only scratch.  stored_bytes() reports the encoded
/// size, so budgets see the real (3-5x smaller) footprint.
class CompressedChunkPayload final : public ChunkPayload {
 public:
  /// Compressed-resident: adopts the encoder's buffer.
  explicit CompressedChunkPayload(EncodedColumns encoded) noexcept
      : owned_(std::move(encoded.bytes)),
        coding_{encoded.count,
                encoded.begin_codec,
                encoded.end_codec,
                encoded.state_codec,
                {},
                {},
                {}} {
    const std::span<const std::uint8_t> all(owned_);
    coding_.begin_section =
        all.subspan(0, static_cast<std::size_t>(encoded.begin_bytes));
    coding_.end_section =
        all.subspan(static_cast<std::size_t>(encoded.begin_bytes),
                    static_cast<std::size_t>(encoded.end_bytes));
    coding_.state_section = all.subspan(
        static_cast<std::size_t>(encoded.begin_bytes + encoded.end_bytes),
        static_cast<std::size_t>(encoded.state_bytes));
  }

  /// Compressed file-backed: the coding's sections point into `region`
  /// (binary_io validates the record before building one of these).
  CompressedChunkPayload(std::shared_ptr<const MappedRegion> region,
                         const ColumnsCoding& coding) noexcept
      : region_(std::move(region)), coding_(coding) {}

  [[nodiscard]] std::span<const TimeNs> begins() const noexcept override {
    return {};
  }
  [[nodiscard]] std::span<const TimeNs> ends() const noexcept override {
    return {};
  }
  [[nodiscard]] std::span<const StateId> states() const noexcept override {
    return {};
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return static_cast<std::size_t>(coding_.count);
  }
  [[nodiscard]] bool addressable() const noexcept override { return false; }
  [[nodiscard]] bool resident() const noexcept override {
    return region_ == nullptr;
  }
  [[nodiscard]] std::size_t stored_bytes() const noexcept override {
    return coding_.encoded_bytes();
  }
  void advise(MapAdvice advice) const noexcept override {
    if (region_ != nullptr) region_->advise(advice);
  }

  [[nodiscard]] const ColumnsCoding& coding() const noexcept {
    return coding_;
  }

 private:
  /// Exactly one of these backs the sections: the owned buffer
  /// (resident) or the mapped region (file-backed).
  std::vector<std::uint8_t> owned_;
  std::shared_ptr<const MappedRegion> region_;
  ColumnsCoding coding_;
};

/// One sealed run of a resource's intervals: columnar, sorted by
/// (begin, end, state), immutable after construction.  The time fences
/// (min begin, min/max end) let window selection and eviction decide
/// chunk fate without touching the columns.  The columns live in a
/// backend-polymorphic ChunkPayload; the chunk caches their spans, so the
/// hot accessors cost the same for resident and mapped backends.
class TraceChunk {
 public:
  /// Freezes parallel columns already sorted by (begin, end, state) into a
  /// resident payload.  Throws InvalidArgument on empty or mismatched
  /// columns.
  TraceChunk(std::vector<TimeNs> begins, std::vector<TimeNs> ends,
             std::vector<StateId> states);

  /// Wraps an externally validated *addressable* payload (the mmap
  /// open/spill path).  The caller vouches that the columns are non-empty,
  /// sorted by the total key and that `min_end`/`max_end` are their true
  /// end fences — binary_io's record validation recomputes all three
  /// while checksumming.
  TraceChunk(std::shared_ptr<const ChunkPayload> payload, TimeNs min_end,
             TimeNs max_end);

  /// Wraps an externally validated payload of any backend, with the
  /// boundary intervals and end fences supplied (a compressed payload
  /// cannot derive them by indexing).  `first`/`last` are the first and
  /// last intervals of the sorted run; validation or the encoder scan
  /// provides them.
  TraceChunk(std::shared_ptr<const ChunkPayload> payload, StateInterval first,
             StateInterval last, TimeNs min_end, TimeNs max_end);

  /// Freezes a sorted row-major run (the seal path).
  [[nodiscard]] static std::shared_ptr<const TraceChunk> from_sorted(
      std::span<const StateInterval> sorted);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// Random access — addressable backends only (ChunkCursor streams every
  /// backend, including compressed).
  [[nodiscard]] StateInterval at(std::size_t i) const noexcept {
    return {begins_[i], ends_[i], states_[i]};
  }
  /// Column spans; empty for compressed (non-addressable) chunks.
  [[nodiscard]] std::span<const TimeNs> begins() const noexcept {
    return begins_;
  }
  [[nodiscard]] std::span<const TimeNs> ends() const noexcept { return ends_; }
  [[nodiscard]] std::span<const StateId> states() const noexcept {
    return states_;
  }

  /// Boundary intervals of the sorted run (all backends).
  [[nodiscard]] const StateInterval& first() const noexcept { return first_; }
  [[nodiscard]] const StateInterval& last() const noexcept { return last_; }

  /// Fences.  begins are sorted, so min_begin is the first entry; the end
  /// column is not sorted, so min/max are tracked at construction.
  [[nodiscard]] TimeNs min_begin() const noexcept { return first_.begin; }
  [[nodiscard]] TimeNs min_end() const noexcept { return min_end_; }
  [[nodiscard]] TimeNs max_end() const noexcept { return max_end_; }

  /// Payload bytes of the three columns (logical size, backend-independent).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return size_ * (sizeof(TimeNs) * 2 + sizeof(StateId));
  }
  /// Actual storage footprint (encoded bytes for compressed chunks) — the
  /// number every budget counts.
  [[nodiscard]] std::size_t stored_bytes() const noexcept {
    return payload_->stored_bytes();
  }

  /// Whether the columns count against a resident-memory budget (see
  /// ChunkPayload::resident).
  [[nodiscard]] bool resident() const noexcept { return payload_->resident(); }
  /// Whether at()/the column spans may be used (see
  /// ChunkPayload::addressable).
  [[nodiscard]] bool addressable() const noexcept {
    return payload_->addressable();
  }
  /// Forwards paging advice to a file-backed payload (no-op otherwise).
  void advise(MapAdvice advice) const noexcept { payload_->advise(advice); }
  [[nodiscard]] const std::shared_ptr<const ChunkPayload>& payload()
      const noexcept {
    return payload_;
  }

  /// Size of the longest prefix whose begins lie below `t1` (begins are
  /// sorted).  When the prefix is non-empty and `last` is non-null, also
  /// reports its final interval (the first is first()).  Addressable
  /// chunks binary-search; compressed chunks stream-decode, stopping at
  /// the first begin >= t1.
  [[nodiscard]] std::size_t prefix_below(TimeNs t1,
                                         StateInterval* last) const;

 private:
  std::shared_ptr<const ChunkPayload> payload_;
  /// Cached payload spans (stable: payloads are immutable; empty for
  /// compressed payloads).
  std::span<const TimeNs> begins_;
  std::span<const TimeNs> ends_;
  std::span<const StateId> states_;
  std::size_t size_ = 0;
  StateInterval first_{};
  StateInterval last_{};
  TimeNs min_end_ = 0;
  TimeNs max_end_ = 0;
};

using TraceChunkPtr = std::shared_ptr<const TraceChunk>;

/// Streaming reader over the prefix [0, limit) of one sealed chunk — the
/// uniform way to consume any backend.  Addressable chunks are read
/// through their cached spans; compressed chunks stream through a
/// ColumnsDecoder whose fixed-size state is the per-run cursor buffer
/// (whole columns are never materialised).
class ChunkCursor {
 public:
  ChunkCursor(const TraceChunk& chunk, std::size_t limit);
  explicit ChunkCursor(const TraceChunk& chunk)
      : ChunkCursor(chunk, chunk.size()) {}

  [[nodiscard]] bool valid() const noexcept { return pos_ < limit_; }
  [[nodiscard]] const StateInterval& current() const noexcept { return cur_; }
  void next() {
    if (++pos_ >= limit_) return;
    if (decoder_.has_value()) {
      decode_next();
    } else {
      cur_ = chunk_->at(pos_);
    }
  }

  /// Bytes of decoder scratch this cursor holds (0 for addressable runs).
  [[nodiscard]] std::size_t scratch_bytes() const noexcept {
    return decoder_.has_value() ? decoder_->scratch_bytes() : 0;
  }

 private:
  void decode_next();

  const TraceChunk* chunk_ = nullptr;
  std::size_t pos_ = 0;
  std::size_t limit_ = 0;
  StateInterval cur_{};
  std::optional<ColumnsDecoder> decoder_;
};

/// One sorted run for the shared k-way merge: the prefix [0, size) of a
/// sealed chunk.
struct ChunkRun {
  const TraceChunk* chunk = nullptr;
  std::size_t size = 0;
};

/// Streams the k-way merge of sorted runs to `f(StateInterval)` in
/// (begin, end, state) order — the one canonical merge that both the
/// store's row materialization/compaction and TraceView cursors use.
/// Equal keys emit lowest-run-first; since equal keys are
/// indistinguishable intervals, the output is the unique sorted sequence
/// of the input multiset regardless of how it was chunked.  Runs stream
/// through ChunkCursor, so every backend — resident, mapped, compressed —
/// merges identically.
template <class F>
void merge_chunk_runs(std::span<const ChunkRun> runs, F&& f) {
  if (runs.empty()) return;
  if (runs.size() == 1) {
    const ChunkRun& run = runs.front();
    for (ChunkCursor c(*run.chunk, run.size); c.valid(); c.next()) {
      f(c.current());
    }
    return;
  }
  std::vector<ChunkCursor> cursors;
  cursors.reserve(runs.size());
  for (const ChunkRun& run : runs) cursors.emplace_back(*run.chunk, run.size);
  for (;;) {
    ChunkCursor* best = nullptr;
    for (ChunkCursor& c : cursors) {
      if (!c.valid()) continue;
      if (best == nullptr || interval_key_less(c.current(), best->current())) {
        best = &c;
      }
    }
    if (best == nullptr) break;
    f(best->current());
    best->next();
  }
}

/// Seal-time chunk compression policy (TraceStore::set_compression).
enum class ChunkCompression : std::uint8_t {
  kNone = 0,  ///< Sealed chunks stay raw resident columns.
  kAuto = 1,  ///< Sealed chunks are encoded per column (cheapest codec
              ///< wins) whenever that shrinks them; raw otherwise.
};

/// Shared, chunked, append-tailed trace storage.  Mutations (append, seal,
/// evict, compact) are single-writer: they must not race with each other.
/// Sealed chunks, once handed out (to a TraceView or via chunks()), are
/// never modified — concurrent *readers* need no synchronization.
class TraceStore {
 public:
  TraceStore() = default;
  // Copy shares the immutable sealed chunks and duplicates only tails and
  // tables — a cheap value copy with copy-on-write chunk granularity.
  TraceStore(const TraceStore&) = default;
  TraceStore& operator=(const TraceStore&) = default;
  TraceStore(TraceStore&&) noexcept = default;
  TraceStore& operator=(TraceStore&&) noexcept = default;

  /// Registers a resource by hierarchy path; returns its dense id.
  /// Re-registering an existing path returns the existing id.
  ResourceId add_resource(std::string_view path);

  [[nodiscard]] std::size_t resource_count() const noexcept {
    return resource_paths_->size();
  }
  [[nodiscard]] const std::string& resource_path(ResourceId r) const {
    return (*resource_paths_)[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const std::vector<std::string>& resource_paths()
      const noexcept {
    return *resource_paths_;
  }
  /// Pins the current path table: the table is copy-on-write, so a later
  /// add_resource (on this store or a copy) never mutates a pinned
  /// snapshot.  TraceViews hold one of these.
  [[nodiscard]] std::shared_ptr<const std::vector<std::string>>
  resource_paths_ptr() const noexcept {
    return resource_paths_;
  }
  /// Finds a resource id by path (kInvalidResource when absent).
  [[nodiscard]] ResourceId find_resource(std::string_view path) const;

  [[nodiscard]] StateRegistry& states() noexcept { return states_; }
  [[nodiscard]] const StateRegistry& states() const noexcept {
    return states_;
  }

  /// Appends a state occurrence to the resource's mutable tail.  Throws
  /// InvalidArgument on end < begin or unknown resource/state ids.
  void add_state(ResourceId resource, StateId state, TimeNs begin, TimeNs end);

  /// Seals every non-empty tail into a new immutable chunk (sorted by the
  /// total key), re-derives the observation window from the chunk fences
  /// unless overridden, and compacts any resource whose chunk list exceeds
  /// kCompactionThreshold.  Idempotent.
  void seal_chunk();

  /// True after seal_chunk() until the next mutation — all tails are
  /// sealed and the observation window is valid.
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }
  /// Weaker predicate: every tail is empty (chunk set is complete) even if
  /// the auto-derived window is stale.  TraceViews require only this.
  [[nodiscard]] bool tails_sealed() const noexcept;

  /// Chunk-fence eviction: unlinks every sealed chunk whose max end is at
  /// or before `cutoff` (by the half-open convention such intervals can
  /// never overlap a window starting at `cutoff`) and filters the tails.
  /// Straddling chunks are kept whole — O(#chunks), never rewrites columns.
  /// Outstanding views keep unlinked chunks alive.  The cutoff is also
  /// remembered as the store's *eviction horizon*: the next compaction
  /// drops the individually dead intervals a straddling chunk retained, so
  /// long-running sliding ingest keeps memory proportional to the live
  /// window, not to everything ever ingested.
  void evict_before(TimeNs cutoff);

  /// Exact per-interval erase (the Trace::erase_before compatibility
  /// contract): additionally rewrites straddling chunks so that *no*
  /// interval ending at or before `cutoff` survives.  Chunks whose
  /// min-end fence clears the cutoff are kept untouched.  Point-in-time:
  /// unlike evict_before it does not move the eviction horizon, so
  /// intervals appended afterwards — however old — are retained.
  void erase_before_exact(TimeNs cutoff);

  /// Highest evict_before cutoff seen.  Data at or below it is gone (or
  /// going); readers whose window reaches before it would silently
  /// under-count and must be rejected (sessions check this at attach).
  [[nodiscard]] TimeNs evict_horizon() const noexcept {
    return evict_horizon_;
  }

  /// Observation window [begin, end); valid after seal_chunk().  An empty
  /// store reports [0, 0).
  [[nodiscard]] TimeNs begin() const noexcept { return begin_; }
  [[nodiscard]] TimeNs end() const noexcept { return end_; }
  [[nodiscard]] TimeNs span() const noexcept { return end_ - begin_; }
  /// Overrides the observation window (e.g. to align several traces).
  void set_window(TimeNs begin, TimeNs end);

  /// Total number of state occurrences (sealed + tail).
  [[nodiscard]] std::uint64_t state_count() const noexcept;

  /// Sealed chunks of one resource, oldest first.
  [[nodiscard]] std::span<const TraceChunkPtr> chunks(ResourceId r) const {
    return lanes_[static_cast<std::size_t>(r)].chunks;
  }
  /// Adopts an externally built sealed chunk (the zero-copy chunk-file
  /// open path): appended to resource r's chunk list as-is.  The chunk
  /// must be sorted by the total key — binary_io validates this when it
  /// maps a record.  Unseals the store (call seal_chunk() when done).
  void adopt_chunk(ResourceId r, TraceChunkPtr chunk);
  /// Mutable tail of one resource, in append order.
  [[nodiscard]] std::span<const StateInterval> tail(ResourceId r) const {
    return lanes_[static_cast<std::size_t>(r)].tail;
  }

  /// Rebuilds the fully merged row view of one resource: sealed chunks
  /// k-way-merged by the total key, followed by the tail in append order
  /// (the Trace facade's intervals() contract).
  void materialize(ResourceId r, std::vector<StateInterval>& out) const;

  /// Monotonic mutation counter (starts at 1); lets facades cache
  /// materialized rows and detect staleness cheaply.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Stored payload bytes held by the store: sealed chunk footprints
  /// (encoded size for compressed chunks) plus tail capacity, regardless
  /// of backend.  The number a multi-session server shares — and counts
  /// once — across all sessions reading this store.
  [[nodiscard]] std::size_t store_bytes() const noexcept;

  // --- Seal-time compression policy --------------------------------------

  /// Sets the compression policy applied when chunks are sealed or
  /// compacted.  Enabling kAuto also re-encodes the already sealed
  /// resident raw chunks in place (slot swaps; outstanding views keep
  /// their pinned raw chunks).  Switching back to kNone only affects
  /// future seals — existing compressed chunks stay compressed.
  void set_compression(ChunkCompression policy);
  [[nodiscard]] ChunkCompression compression() const noexcept {
    return compression_;
  }

  // --- On-disk spill (backend swap; contents never change) ---------------

  /// Configures the append-only spill file cold chunks are written to.
  /// Required before spill_cold().  The file is created lazily on the
  /// first spill; it only ever grows (spilled records stay mapped even
  /// after eviction unlinks their chunks).  Store copies inherit the path
  /// — give long-lived copies their own spill file before spilling from
  /// them, appends are only serialized within one store.
  void enable_spill(std::string path);
  [[nodiscard]] bool spill_enabled() const noexcept {
    return !spill_path_.empty();
  }
  [[nodiscard]] const std::string& spill_path() const noexcept {
    return spill_path_;
  }

  /// Spills the coldest resident sealed chunks — ascending fence max-end,
  /// an LRU over trace time, so data below or just above the oldest live
  /// window goes first — until resident_chunk_bytes() <= budget_bytes or
  /// no resident chunk is left.  Each spilled chunk is appended to the
  /// spill file and its lane slot swapped to a file-backed (mmap) payload;
  /// outstanding views keep streaming the old resident chunk they pinned.
  /// Returns the number of chunks spilled.  Throws InvalidArgument when
  /// spill is not enabled.
  std::size_t spill_cold(std::size_t budget_bytes);

  /// Swaps every spilled chunk of resource r back to a resident copy
  /// (e.g. before hot re-reads, or by compaction before it merges across
  /// one).  Returns the number of chunks pinned.
  std::size_t pin(ResourceId r);
  /// pin() over every resource.
  std::size_t pin_all();

  /// Resident split of the sealed chunk *stored* bytes (encoded size for
  /// compressed chunks; tails are always resident and counted by neither:
  /// they are mutable and unspillable).  The budget spill_cold() enforces
  /// is over resident_chunk_bytes().
  [[nodiscard]] std::size_t resident_chunk_bytes() const noexcept;
  [[nodiscard]] std::size_t spilled_chunk_bytes() const noexcept;

  /// Spill-file occupancy: bytes of records whose chunks are still linked
  /// in a lane vs records orphaned by pin/evict/compaction churn.  Once
  /// dead bytes exceed live bytes the store compacts the file (temp +
  /// rename, like chunk-file writes), remapping the live records — so the
  /// file stays bounded by ~2x the live spilled set.  Outstanding views
  /// keep reading their old mappings (POSIX keeps renamed-over pages
  /// alive).
  [[nodiscard]] std::size_t spill_live_bytes() const noexcept {
    return spill_live_bytes_;
  }
  [[nodiscard]] std::size_t spill_dead_bytes() const noexcept {
    return spill_dead_bytes_;
  }

  /// Structural audit: re-derives every invariant the readers rely on and
  /// throws ContractError (common/contract.hpp) on the first violation —
  ///   * table consistency: one lane per registered resource path, the id
  ///     map a bijection onto the path table;
  ///   * per chunk (streamed through ChunkCursor, so every backend —
  ///     resident, mapped, compressed — is audited through the same path):
  ///     non-empty, sorted by the total (begin, end, state) key, every
  ///     end >= begin, states within the registry, the cached boundary
  ///     intervals and min/max-end fences *exactly* equal to the streamed
  ///     ones, and the fence clear of the eviction horizon (horizon
  ///     stickiness: seal, evict and compaction all drop what a legal
  ///     window can no longer read);
  ///   * tails: well-formed intervals over registered states;
  ///   * spill accounting: live record bytes sum to spill_live_bytes() and
  ///     every live record belongs to a chunk still linked in a lane;
  ///   * window: end >= begin, and equal to the fence-derived window when
  ///     sealed and not overridden.
  /// O(state_count()) — call it at stage boundaries (STAGG_AUDIT does, in
  /// audit builds), not per append.  Always compiled: tests may drive it
  /// directly in any build.
  void audit() const;

  /// seal_chunk() size-tier-compacts a resource once its chunk list grows
  /// past this bound (merging the smallest chunks down to half of it), so
  /// view cursors merge O(1) runs while streaming ingest stays
  /// O(n log n) overall.
  static constexpr std::size_t kCompactionThreshold = 16;

  /// Compression splits large runs into blocks of at most this many
  /// intervals, each sealed as its own chunk with its own time fences.
  /// Encoded columns have no random access, so fence granularity is what
  /// keeps incremental refolds cheap: a view selecting a window suffix
  /// fence-skips the blocks wholly behind it instead of stream-decoding a
  /// monolithic chunk from the start on every advance.
  static constexpr std::size_t kCompressedBlockIntervals = 128;

 private:
  struct Lane {
    std::vector<TraceChunkPtr> chunks;
    std::vector<StateInterval> tail;
  };

  void compact_lane(Lane& lane,
                    std::vector<std::shared_ptr<const ChunkPayload>>&
                        unlinked);
  void derive_window();

  /// Applies the compression policy to a freshly built resident chunk,
  /// appending the result to `out`: compressed-resident block chunks (at
  /// most `block_intervals` intervals each) when the policy is kAuto and
  /// encoding shrinks the run, the chunk itself unchanged otherwise.
  void maybe_compress_into(TraceChunkPtr chunk,
                           std::vector<TraceChunkPtr>& out,
                           std::size_t block_intervals =
                               kCompressedBlockIntervals) const;

  /// Spill-file record accounting: called whenever a chunk leaves its
  /// lane slot for good (evict, erase, pin, compaction merge) so the
  /// record it may own in the spill file is counted dead.
  void note_unlinked(const ChunkPayload* payload);
  /// Compacts the spill file once dead bytes exceed live bytes.
  void maybe_compact_spill();
  void compact_spill();

  /// Append-only spill file; empty = spill disabled.
  std::string spill_path_;
  /// Live spill-file records by payload identity -> record bytes.
  std::unordered_map<const ChunkPayload*, std::size_t> spill_records_;
  std::size_t spill_live_bytes_ = 0;
  std::size_t spill_dead_bytes_ = 0;
  ChunkCompression compression_ = ChunkCompression::kNone;

  /// Copy-on-write: cloned before mutation whenever pinned by a view (or
  /// shared with a store copy), so outstanding snapshots stay stable.
  std::shared_ptr<std::vector<std::string>> resource_paths_ =
      std::make_shared<std::vector<std::string>>();
  std::unordered_map<std::string, ResourceId> resource_ids_;
  StateRegistry states_;
  std::vector<Lane> lanes_;
  TimeNs begin_ = 0;
  TimeNs end_ = 0;
  /// Highest evict_before cutoff seen (erase_before_exact deliberately
  /// leaves it alone: erase is point-in-time, eviction is forward-only).
  /// Compaction may drop any interval ending at or before it — provably
  /// unreadable by every legal window.
  TimeNs evict_horizon_ = std::numeric_limits<TimeNs>::min();
  bool sealed_ = false;
  bool window_overridden_ = false;
  std::uint64_t generation_ = 1;
};

}  // namespace stagg
