// Immutable chunked trace storage — the shared substrate of multi-session
// analysis servers (dariadb-style chunk files: sealed columnar pages that
// can live in memory or on disk).
//
// A TraceStore holds, per resource, a list of *sealed* chunks — immutable,
// columnar (SoA) runs of state intervals sorted by (begin, end, state),
// each carrying min/max-time fences — plus one small mutable append tail.
// seal_chunk() sorts every non-empty tail and freezes it into a new chunk;
// evict_before() drops whole chunks whose fence proves they can never
// overlap a window starting at the cutoff.  Sealed chunks are held by
// shared_ptr and never mutated: any number of TraceView readers (windows,
// hierarchy scopes, concurrent sessions) share them zero-copy, and
// compaction or eviction in the store simply unlinks chunks that outstanding
// views keep alive.
//
// Storage backends: a sealed chunk's payload is polymorphic (ChunkPayload).
// The resident backend owns its columns as heap vectors; the file-backed
// backend exposes the columns of an mmapped chunk-file record in place
// (common/mapped_file.hpp), so a spilled chunk costs reclaimable page-cache
// pages instead of anonymous heap.  spill_cold() rewrites the coldest
// resident chunks (ascending fence max-end — an LRU over trace time) to the
// store's spill file and swaps in mapped payloads until the resident chunk
// bytes fit a budget; pin() swaps a resource's spilled chunks back to
// resident copies.  Both swap *chunk pointers*, never chunk contents, so an
// outstanding TraceView — which pinned its chunks by reference at selection
// — keeps streaming its snapshot bit-identically through a mid-stream spill,
// pin, eviction or compaction.
//
// Ordering contract: chunks are sorted by the *total* key (begin, end,
// state).  Intervals with identical keys are indistinguishable to every
// consumer (they fold the same mass into the same model cell), so the
// merged per-resource sequence — and therefore every model fold — is a pure
// function of the interval multiset, independent of how the intervals were
// partitioned into chunks.  This is what makes an N-chunk shared store
// bit-identical to a freshly sorted single-owner trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"
#include "trace/state_registry.hpp"

namespace stagg {

/// Total sort key of the chunked trace layer: (begin, end, state).
/// Strict-weak and *total up to indistinguishability* — equal keys mean
/// equal intervals — so merges of separately sorted chunks are
/// layout-independent.
[[nodiscard]] inline bool interval_key_less(const StateInterval& a,
                                            const StateInterval& b) noexcept {
  if (a.begin != b.begin) return a.begin < b.begin;
  if (a.end != b.end) return a.end < b.end;
  return a.state < b.state;
}

class MappedRegion;

/// Backend of one sealed chunk's columns.  Implementations expose three
/// parallel columns sorted by (begin, end, state); they are immutable and
/// never change what the spans point at for the payload's lifetime.
class ChunkPayload {
 public:
  virtual ~ChunkPayload() = default;
  ChunkPayload(const ChunkPayload&) = delete;
  ChunkPayload& operator=(const ChunkPayload&) = delete;

  [[nodiscard]] virtual std::span<const TimeNs> begins() const noexcept = 0;
  [[nodiscard]] virtual std::span<const TimeNs> ends() const noexcept = 0;
  [[nodiscard]] virtual std::span<const StateId> states() const noexcept = 0;

  /// True when the columns are anonymous heap memory owned by this payload
  /// (they count against a resident-byte budget); false for file-backed
  /// columns, whose pages the OS loads and reclaims on demand.
  [[nodiscard]] virtual bool resident() const noexcept = 0;

  /// Logical payload bytes of the three columns (backend-independent).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return begins().size() * (sizeof(TimeNs) * 2 + sizeof(StateId));
  }

 protected:
  ChunkPayload() = default;
};

/// Heap-vector backend (the seal/compaction/pin path).
class ResidentChunkPayload final : public ChunkPayload {
 public:
  ResidentChunkPayload(std::vector<TimeNs> begins, std::vector<TimeNs> ends,
                       std::vector<StateId> states) noexcept
      : begins_(std::move(begins)),
        ends_(std::move(ends)),
        states_(std::move(states)) {}

  [[nodiscard]] std::span<const TimeNs> begins() const noexcept override {
    return begins_;
  }
  [[nodiscard]] std::span<const TimeNs> ends() const noexcept override {
    return ends_;
  }
  [[nodiscard]] std::span<const StateId> states() const noexcept override {
    return states_;
  }
  [[nodiscard]] bool resident() const noexcept override { return true; }

 private:
  std::vector<TimeNs> begins_;
  std::vector<TimeNs> ends_;
  std::vector<StateId> states_;
};

/// File-backed backend: columns point into a chunk-file record mapped by a
/// shared MappedRegion (binary_io.hpp owns the on-disk format and builds
/// these after validating section bounds, checksum and sort order).  The
/// payload keeps its region alive, so a chunk stays readable after the
/// store unlinks it — or even after the spill file is unlinked.
class MappedChunkPayload final : public ChunkPayload {
 public:
  MappedChunkPayload(std::shared_ptr<const MappedRegion> region,
                     std::span<const TimeNs> begins,
                     std::span<const TimeNs> ends,
                     std::span<const StateId> states) noexcept
      : region_(std::move(region)),
        begins_(begins),
        ends_(ends),
        states_(states) {}

  [[nodiscard]] std::span<const TimeNs> begins() const noexcept override {
    return begins_;
  }
  [[nodiscard]] std::span<const TimeNs> ends() const noexcept override {
    return ends_;
  }
  [[nodiscard]] std::span<const StateId> states() const noexcept override {
    return states_;
  }
  [[nodiscard]] bool resident() const noexcept override { return false; }

 private:
  std::shared_ptr<const MappedRegion> region_;
  std::span<const TimeNs> begins_;
  std::span<const TimeNs> ends_;
  std::span<const StateId> states_;
};

/// One sealed run of a resource's intervals: columnar, sorted by
/// (begin, end, state), immutable after construction.  The time fences
/// (min begin, min/max end) let window selection and eviction decide
/// chunk fate without touching the columns.  The columns live in a
/// backend-polymorphic ChunkPayload; the chunk caches their spans, so the
/// hot accessors cost the same for resident and mapped backends.
class TraceChunk {
 public:
  /// Freezes parallel columns already sorted by (begin, end, state) into a
  /// resident payload.  Throws InvalidArgument on empty or mismatched
  /// columns.
  TraceChunk(std::vector<TimeNs> begins, std::vector<TimeNs> ends,
             std::vector<StateId> states);

  /// Wraps an externally validated payload (the mmap open/spill path).
  /// The caller vouches that the columns are non-empty, sorted by the
  /// total key and that `min_end`/`max_end` are their true end fences —
  /// binary_io's record validation recomputes all three while
  /// checksumming.
  TraceChunk(std::shared_ptr<const ChunkPayload> payload, TimeNs min_end,
             TimeNs max_end);

  /// Freezes a sorted row-major run (the seal path).
  [[nodiscard]] static std::shared_ptr<const TraceChunk> from_sorted(
      std::span<const StateInterval> sorted);

  [[nodiscard]] std::size_t size() const noexcept { return begins_.size(); }
  [[nodiscard]] StateInterval at(std::size_t i) const noexcept {
    return {begins_[i], ends_[i], states_[i]};
  }
  [[nodiscard]] std::span<const TimeNs> begins() const noexcept {
    return begins_;
  }
  [[nodiscard]] std::span<const TimeNs> ends() const noexcept { return ends_; }
  [[nodiscard]] std::span<const StateId> states() const noexcept {
    return states_;
  }

  /// Fences.  begins are sorted, so min_begin is the first entry; the end
  /// column is not sorted, so min/max are tracked at construction.
  [[nodiscard]] TimeNs min_begin() const noexcept { return begins_.front(); }
  [[nodiscard]] TimeNs min_end() const noexcept { return min_end_; }
  [[nodiscard]] TimeNs max_end() const noexcept { return max_end_; }

  /// Payload bytes of the three columns (logical size, backend-independent).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return begins_.size() * (sizeof(TimeNs) * 2 + sizeof(StateId));
  }

  /// Whether the columns count against a resident-memory budget (see
  /// ChunkPayload::resident).
  [[nodiscard]] bool resident() const noexcept { return payload_->resident(); }
  [[nodiscard]] const std::shared_ptr<const ChunkPayload>& payload()
      const noexcept {
    return payload_;
  }

 private:
  std::shared_ptr<const ChunkPayload> payload_;
  /// Cached payload spans (stable: payloads are immutable).
  std::span<const TimeNs> begins_;
  std::span<const TimeNs> ends_;
  std::span<const StateId> states_;
  TimeNs min_end_ = 0;
  TimeNs max_end_ = 0;
};

using TraceChunkPtr = std::shared_ptr<const TraceChunk>;

/// One sorted run for the shared k-way merge: the prefix [0, size) of a
/// sealed chunk.
struct ChunkRun {
  const TraceChunk* chunk = nullptr;
  std::size_t size = 0;
};

/// Streams the k-way merge of sorted runs to `f(StateInterval)` in
/// (begin, end, state) order — the one canonical merge that both the
/// store's row materialization/compaction and TraceView cursors use.
/// Equal keys emit lowest-run-first; since equal keys are
/// indistinguishable intervals, the output is the unique sorted sequence
/// of the input multiset regardless of how it was chunked.
template <class F>
void merge_chunk_runs(std::span<const ChunkRun> runs, F&& f) {
  if (runs.empty()) return;
  if (runs.size() == 1) {
    const ChunkRun& run = runs.front();
    for (std::size_t i = 0; i < run.size; ++i) f(run.chunk->at(i));
    return;
  }
  std::vector<std::size_t> pos(runs.size(), 0);
  for (;;) {
    std::size_t best = runs.size();
    StateInterval best_iv;
    for (std::size_t k = 0; k < runs.size(); ++k) {
      if (pos[k] >= runs[k].size) continue;
      const StateInterval iv = runs[k].chunk->at(pos[k]);
      if (best == runs.size() || interval_key_less(iv, best_iv)) {
        best = k;
        best_iv = iv;
      }
    }
    if (best == runs.size()) break;
    ++pos[best];
    f(best_iv);
  }
}

/// Shared, chunked, append-tailed trace storage.  Mutations (append, seal,
/// evict, compact) are single-writer: they must not race with each other.
/// Sealed chunks, once handed out (to a TraceView or via chunks()), are
/// never modified — concurrent *readers* need no synchronization.
class TraceStore {
 public:
  TraceStore() = default;
  // Copy shares the immutable sealed chunks and duplicates only tails and
  // tables — a cheap value copy with copy-on-write chunk granularity.
  TraceStore(const TraceStore&) = default;
  TraceStore& operator=(const TraceStore&) = default;
  TraceStore(TraceStore&&) noexcept = default;
  TraceStore& operator=(TraceStore&&) noexcept = default;

  /// Registers a resource by hierarchy path; returns its dense id.
  /// Re-registering an existing path returns the existing id.
  ResourceId add_resource(std::string_view path);

  [[nodiscard]] std::size_t resource_count() const noexcept {
    return resource_paths_->size();
  }
  [[nodiscard]] const std::string& resource_path(ResourceId r) const {
    return (*resource_paths_)[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const std::vector<std::string>& resource_paths()
      const noexcept {
    return *resource_paths_;
  }
  /// Pins the current path table: the table is copy-on-write, so a later
  /// add_resource (on this store or a copy) never mutates a pinned
  /// snapshot.  TraceViews hold one of these.
  [[nodiscard]] std::shared_ptr<const std::vector<std::string>>
  resource_paths_ptr() const noexcept {
    return resource_paths_;
  }
  /// Finds a resource id by path (kInvalidResource when absent).
  [[nodiscard]] ResourceId find_resource(std::string_view path) const;

  [[nodiscard]] StateRegistry& states() noexcept { return states_; }
  [[nodiscard]] const StateRegistry& states() const noexcept {
    return states_;
  }

  /// Appends a state occurrence to the resource's mutable tail.  Throws
  /// InvalidArgument on end < begin or unknown resource/state ids.
  void add_state(ResourceId resource, StateId state, TimeNs begin, TimeNs end);

  /// Seals every non-empty tail into a new immutable chunk (sorted by the
  /// total key), re-derives the observation window from the chunk fences
  /// unless overridden, and compacts any resource whose chunk list exceeds
  /// kCompactionThreshold.  Idempotent.
  void seal_chunk();

  /// True after seal_chunk() until the next mutation — all tails are
  /// sealed and the observation window is valid.
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }
  /// Weaker predicate: every tail is empty (chunk set is complete) even if
  /// the auto-derived window is stale.  TraceViews require only this.
  [[nodiscard]] bool tails_sealed() const noexcept;

  /// Chunk-fence eviction: unlinks every sealed chunk whose max end is at
  /// or before `cutoff` (by the half-open convention such intervals can
  /// never overlap a window starting at `cutoff`) and filters the tails.
  /// Straddling chunks are kept whole — O(#chunks), never rewrites columns.
  /// Outstanding views keep unlinked chunks alive.  The cutoff is also
  /// remembered as the store's *eviction horizon*: the next compaction
  /// drops the individually dead intervals a straddling chunk retained, so
  /// long-running sliding ingest keeps memory proportional to the live
  /// window, not to everything ever ingested.
  void evict_before(TimeNs cutoff);

  /// Exact per-interval erase (the Trace::erase_before compatibility
  /// contract): additionally rewrites straddling chunks so that *no*
  /// interval ending at or before `cutoff` survives.  Chunks whose
  /// min-end fence clears the cutoff are kept untouched.  Point-in-time:
  /// unlike evict_before it does not move the eviction horizon, so
  /// intervals appended afterwards — however old — are retained.
  void erase_before_exact(TimeNs cutoff);

  /// Highest evict_before cutoff seen.  Data at or below it is gone (or
  /// going); readers whose window reaches before it would silently
  /// under-count and must be rejected (sessions check this at attach).
  [[nodiscard]] TimeNs evict_horizon() const noexcept {
    return evict_horizon_;
  }

  /// Observation window [begin, end); valid after seal_chunk().  An empty
  /// store reports [0, 0).
  [[nodiscard]] TimeNs begin() const noexcept { return begin_; }
  [[nodiscard]] TimeNs end() const noexcept { return end_; }
  [[nodiscard]] TimeNs span() const noexcept { return end_ - begin_; }
  /// Overrides the observation window (e.g. to align several traces).
  void set_window(TimeNs begin, TimeNs end);

  /// Total number of state occurrences (sealed + tail).
  [[nodiscard]] std::uint64_t state_count() const noexcept;

  /// Sealed chunks of one resource, oldest first.
  [[nodiscard]] std::span<const TraceChunkPtr> chunks(ResourceId r) const {
    return lanes_[static_cast<std::size_t>(r)].chunks;
  }
  /// Adopts an externally built sealed chunk (the zero-copy chunk-file
  /// open path): appended to resource r's chunk list as-is.  The chunk
  /// must be sorted by the total key — binary_io validates this when it
  /// maps a record.  Unseals the store (call seal_chunk() when done).
  void adopt_chunk(ResourceId r, TraceChunkPtr chunk);
  /// Mutable tail of one resource, in append order.
  [[nodiscard]] std::span<const StateInterval> tail(ResourceId r) const {
    return lanes_[static_cast<std::size_t>(r)].tail;
  }

  /// Rebuilds the fully merged row view of one resource: sealed chunks
  /// k-way-merged by the total key, followed by the tail in append order
  /// (the Trace facade's intervals() contract).
  void materialize(ResourceId r, std::vector<StateInterval>& out) const;

  /// Monotonic mutation counter (starts at 1); lets facades cache
  /// materialized rows and detect staleness cheaply.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

  /// Payload bytes held by the store: sealed chunk columns plus tail
  /// capacity, regardless of backend.  The number a multi-session server
  /// shares — and counts once — across all sessions reading this store.
  [[nodiscard]] std::size_t store_bytes() const noexcept;

  // --- On-disk spill (backend swap; contents never change) ---------------

  /// Configures the append-only spill file cold chunks are written to.
  /// Required before spill_cold().  The file is created lazily on the
  /// first spill; it only ever grows (spilled records stay mapped even
  /// after eviction unlinks their chunks).  Store copies inherit the path
  /// — give long-lived copies their own spill file before spilling from
  /// them, appends are only serialized within one store.
  void enable_spill(std::string path);
  [[nodiscard]] bool spill_enabled() const noexcept {
    return !spill_path_.empty();
  }
  [[nodiscard]] const std::string& spill_path() const noexcept {
    return spill_path_;
  }

  /// Spills the coldest resident sealed chunks — ascending fence max-end,
  /// an LRU over trace time, so data below or just above the oldest live
  /// window goes first — until resident_chunk_bytes() <= budget_bytes or
  /// no resident chunk is left.  Each spilled chunk is appended to the
  /// spill file and its lane slot swapped to a file-backed (mmap) payload;
  /// outstanding views keep streaming the old resident chunk they pinned.
  /// Returns the number of chunks spilled.  Throws InvalidArgument when
  /// spill is not enabled.
  std::size_t spill_cold(std::size_t budget_bytes);

  /// Swaps every spilled chunk of resource r back to a resident copy
  /// (e.g. before hot re-reads, or by compaction before it merges across
  /// one).  Returns the number of chunks pinned.
  std::size_t pin(ResourceId r);
  /// pin() over every resource.
  std::size_t pin_all();

  /// Resident split of the sealed chunk bytes (tails are always resident
  /// and counted by neither: they are mutable and unspillable).  The
  /// budget spill_cold() enforces is over resident_chunk_bytes().
  [[nodiscard]] std::size_t resident_chunk_bytes() const noexcept;
  [[nodiscard]] std::size_t spilled_chunk_bytes() const noexcept;

  /// seal_chunk() size-tier-compacts a resource once its chunk list grows
  /// past this bound (merging the smallest chunks down to half of it), so
  /// view cursors merge O(1) runs while streaming ingest stays
  /// O(n log n) overall.
  static constexpr std::size_t kCompactionThreshold = 16;

 private:
  struct Lane {
    std::vector<TraceChunkPtr> chunks;
    std::vector<StateInterval> tail;
  };

  void compact_lane(Lane& lane);
  void derive_window();

  /// Append-only spill file; empty = spill disabled.
  std::string spill_path_;

  /// Copy-on-write: cloned before mutation whenever pinned by a view (or
  /// shared with a store copy), so outstanding snapshots stay stable.
  std::shared_ptr<std::vector<std::string>> resource_paths_ =
      std::make_shared<std::vector<std::string>>();
  std::unordered_map<std::string, ResourceId> resource_ids_;
  StateRegistry states_;
  std::vector<Lane> lanes_;
  TimeNs begin_ = 0;
  TimeNs end_ = 0;
  /// Highest evict_before cutoff seen (erase_before_exact deliberately
  /// leaves it alone: erase is point-in-time, eviction is forward-only).
  /// Compaction may drop any interval ending at or before it — provably
  /// unreadable by every legal window.
  TimeNs evict_horizon_ = std::numeric_limits<TimeNs>::min();
  bool sealed_ = false;
  bool window_overridden_ = false;
  std::uint64_t generation_ = 1;
};

}  // namespace stagg
