#include "trace/trace_store.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "trace/binary_io.hpp"

namespace stagg {

namespace {

/// Merges whole chunks into row-major `out` (appending) via the shared
/// canonical merge.
void merge_chunks(std::span<const TraceChunkPtr> chunks,
                  std::vector<StateInterval>& out) {
  std::vector<ChunkRun> runs;
  runs.reserve(chunks.size());
  for (const TraceChunkPtr& c : chunks) runs.push_back({c.get(), c->size()});
  merge_chunk_runs(std::span<const ChunkRun>(runs),
                   [&out](const StateInterval& s) { out.push_back(s); });
}

/// Resident copy of a (typically spilled) chunk: columns duplicated into
/// heap vectors, fences carried over.
TraceChunkPtr make_resident(const TraceChunk& chunk) {
  auto payload = std::make_shared<const ResidentChunkPayload>(
      std::vector<TimeNs>(chunk.begins().begin(), chunk.begins().end()),
      std::vector<TimeNs>(chunk.ends().begin(), chunk.ends().end()),
      std::vector<StateId>(chunk.states().begin(), chunk.states().end()));
  return std::make_shared<const TraceChunk>(std::move(payload),
                                            chunk.min_end(), chunk.max_end());
}

}  // namespace

TraceChunk::TraceChunk(std::vector<TimeNs> begins, std::vector<TimeNs> ends,
                       std::vector<StateId> states) {
  if (begins.empty() || begins.size() != ends.size() ||
      begins.size() != states.size()) {
    throw InvalidArgument("TraceChunk: empty or mismatched columns");
  }
  min_end_ = std::numeric_limits<TimeNs>::max();
  max_end_ = std::numeric_limits<TimeNs>::min();
  for (const TimeNs e : ends) {
    min_end_ = std::min(min_end_, e);
    max_end_ = std::max(max_end_, e);
  }
  auto payload = std::make_shared<const ResidentChunkPayload>(
      std::move(begins), std::move(ends), std::move(states));
  begins_ = payload->begins();
  ends_ = payload->ends();
  states_ = payload->states();
  payload_ = std::move(payload);
}

TraceChunk::TraceChunk(std::shared_ptr<const ChunkPayload> payload,
                       TimeNs min_end, TimeNs max_end)
    : payload_(std::move(payload)), min_end_(min_end), max_end_(max_end) {
  if (!payload_ || payload_->begins().empty() ||
      payload_->begins().size() != payload_->ends().size() ||
      payload_->begins().size() != payload_->states().size()) {
    throw InvalidArgument("TraceChunk: empty or mismatched payload columns");
  }
  begins_ = payload_->begins();
  ends_ = payload_->ends();
  states_ = payload_->states();
}

std::shared_ptr<const TraceChunk> TraceChunk::from_sorted(
    std::span<const StateInterval> sorted) {
  std::vector<TimeNs> begins;
  std::vector<TimeNs> ends;
  std::vector<StateId> states;
  begins.reserve(sorted.size());
  ends.reserve(sorted.size());
  states.reserve(sorted.size());
  for (const StateInterval& s : sorted) {
    begins.push_back(s.begin);
    ends.push_back(s.end);
    states.push_back(s.state);
  }
  return std::make_shared<const TraceChunk>(
      std::move(begins), std::move(ends), std::move(states));
}

ResourceId TraceStore::add_resource(std::string_view path) {
  if (const auto it = resource_ids_.find(std::string(path));
      it != resource_ids_.end()) {
    return it->second;
  }
  if (resource_paths_.use_count() > 1) {  // pinned by a view or a copy
    resource_paths_ =
        std::make_shared<std::vector<std::string>>(*resource_paths_);
  }
  const ResourceId id = static_cast<ResourceId>(resource_paths_->size());
  resource_paths_->emplace_back(path);
  resource_ids_.emplace(resource_paths_->back(), id);
  lanes_.emplace_back();
  sealed_ = false;
  ++generation_;
  return id;
}

ResourceId TraceStore::find_resource(std::string_view path) const {
  const auto it = resource_ids_.find(std::string(path));
  return it == resource_ids_.end() ? kInvalidResource : it->second;
}

void TraceStore::add_state(ResourceId resource, StateId state, TimeNs begin,
                           TimeNs end) {
  if (resource < 0 ||
      static_cast<std::size_t>(resource) >= resource_paths_->size()) {
    throw InvalidArgument("add_state: unknown resource id " +
                          std::to_string(resource));
  }
  if (state < 0 || static_cast<std::size_t>(state) >= states_.size()) {
    throw InvalidArgument("add_state: unknown state id " +
                          std::to_string(state));
  }
  if (end < begin) {
    throw InvalidArgument("add_state: end < begin");
  }
  lanes_[static_cast<std::size_t>(resource)].tail.push_back(
      StateInterval{begin, end, state});
  sealed_ = false;
  ++generation_;
}

void TraceStore::seal_chunk() {
  if (sealed_) return;
  parallel_for(
      lanes_.size(),
      [this](std::size_t r) {
        Lane& lane = lanes_[r];
        if (!lane.tail.empty()) {
          std::sort(lane.tail.begin(), lane.tail.end(), interval_key_less);
          lane.chunks.push_back(TraceChunk::from_sorted(lane.tail));
          lane.tail.clear();
          lane.tail.shrink_to_fit();
        }
        if (lane.chunks.size() > kCompactionThreshold) compact_lane(lane);
      },
      /*grain=*/1);
  derive_window();
  sealed_ = true;
  ++generation_;
}

void TraceStore::compact_lane(Lane& lane) {
  // Size-tiered compaction: merge only as many of the *smallest* chunks
  // as it takes to halve the list.  Large merged chunks are re-merged
  // only once enough small ones accumulate past them, so streaming
  // ingest costs O(n log n) element copies overall — never the
  // re-merge-everything-every-16-seals quadratic blowup — and the
  // transient merge buffer holds a fraction of the lane, not all of it.
  const std::size_t target = kCompactionThreshold / 2;
  const std::size_t merge_count = lane.chunks.size() - target + 1;
  std::vector<std::size_t> order(lane.chunks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&lane](std::size_t a, std::size_t b) {
                     return lane.chunks[a]->size() < lane.chunks[b]->size();
                   });
  std::vector<std::uint8_t> picked(lane.chunks.size(), 0);
  for (std::size_t k = 0; k < merge_count; ++k) picked[order[k]] = 1;

  std::vector<TraceChunkPtr> merge_set;
  merge_set.reserve(merge_count);
  std::size_t first_picked = lane.chunks.size();
  for (std::size_t i = 0; i < lane.chunks.size(); ++i) {
    if (picked[i] != 0) {
      if (first_picked == lane.chunks.size()) first_picked = i;
      // Pin before merging across a spilled chunk: the merge must read
      // resident columns only, so a file-backed member is first copied
      // back to heap (its mapped record in the spill file becomes
      // garbage; the merged output is a fresh resident chunk either way).
      merge_set.push_back(lane.chunks[i]->resident()
                              ? lane.chunks[i]
                              : make_resident(*lane.chunks[i]));
    }
  }
  std::size_t total = 0;
  for (const TraceChunkPtr& c : merge_set) total += c->size();
  std::vector<StateInterval> merged;
  merged.reserve(total);
  merge_chunks(merge_set, merged);
  // Compaction is also the one place individually dead intervals of
  // straddling chunks are let go: anything ending at or before the
  // eviction horizon can never be read by a legal window again.
  std::erase_if(merged, [this](const StateInterval& s) {
    return s.end <= evict_horizon_;
  });

  // Rebuild: survivors keep their order; the merged chunk takes the slot
  // of its oldest member, preserving rough time order for the view
  // cursors' concatenation fast path.
  std::vector<TraceChunkPtr> next;
  next.reserve(lane.chunks.size() - merge_count + 1);
  for (std::size_t i = 0; i < lane.chunks.size(); ++i) {
    if (i == first_picked && !merged.empty()) {
      next.push_back(TraceChunk::from_sorted(merged));
    }
    if (picked[i] == 0) next.push_back(lane.chunks[i]);
  }
  lane.chunks = std::move(next);
}

bool TraceStore::tails_sealed() const noexcept {
  for (const Lane& lane : lanes_) {
    if (!lane.tail.empty()) return false;
  }
  return true;
}

void TraceStore::derive_window() {
  if (window_overridden_) return;
  TimeNs lo = std::numeric_limits<TimeNs>::max();
  TimeNs hi = std::numeric_limits<TimeNs>::min();
  bool any = false;
  for (const Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) {
      lo = std::min(lo, c->min_begin());
      hi = std::max(hi, c->max_end());
      any = true;
    }
    for (const StateInterval& s : lane.tail) {
      lo = std::min(lo, s.begin);
      hi = std::max(hi, s.end);
      any = true;
    }
  }
  begin_ = any ? lo : 0;
  end_ = any ? hi : 0;
}

void TraceStore::evict_before(TimeNs cutoff) {
  evict_horizon_ = std::max(evict_horizon_, cutoff);
  for (Lane& lane : lanes_) {
    std::erase_if(lane.chunks, [cutoff](const TraceChunkPtr& c) {
      return c->max_end() <= cutoff;
    });
    std::erase_if(lane.tail, [cutoff](const StateInterval& s) {
      return s.end <= cutoff;
    });
  }
  // The auto-derived window may have spanned the evicted chunks; the next
  // seal re-derives it from the survivors.  An overridden window is the
  // caller's contract and stays put.
  if (!window_overridden_) sealed_ = false;
  ++generation_;
}

void TraceStore::erase_before_exact(TimeNs cutoff) {
  // Deliberately does NOT raise the eviction horizon: erase_before is a
  // point-in-time operation (the Trace facade contract) and must not
  // retroactively delete intervals appended after the call.  Only
  // evict_before — the forward-moving-window API — is sticky.
  for (Lane& lane : lanes_) {
    std::vector<TraceChunkPtr> kept;
    kept.reserve(lane.chunks.size());
    for (TraceChunkPtr& c : lane.chunks) {
      if (c->max_end() <= cutoff) continue;  // entirely dead
      if (c->min_end() > cutoff) {           // fence proves no dead entry
        kept.push_back(std::move(c));
        continue;
      }
      // Straddling: rewrite the surviving subsequence (still sorted).
      std::vector<StateInterval> survivors;
      survivors.reserve(c->size());
      for (std::size_t i = 0; i < c->size(); ++i) {
        const StateInterval s = c->at(i);
        if (s.end > cutoff) survivors.push_back(s);
      }
      if (!survivors.empty()) {
        kept.push_back(TraceChunk::from_sorted(survivors));
      }
    }
    lane.chunks = std::move(kept);
    std::erase_if(lane.tail, [cutoff](const StateInterval& s) {
      return s.end <= cutoff;
    });
  }
  if (!window_overridden_) sealed_ = false;
  ++generation_;
}

void TraceStore::set_window(TimeNs begin, TimeNs end) {
  if (end < begin) throw InvalidArgument("set_window: end < begin");
  begin_ = begin;
  end_ = end;
  window_overridden_ = true;
}

std::uint64_t TraceStore::state_count() const noexcept {
  std::uint64_t n = 0;
  for (const Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) n += c->size();
    n += lane.tail.size();
  }
  return n;
}

void TraceStore::materialize(ResourceId r,
                             std::vector<StateInterval>& out) const {
  const Lane& lane = lanes_[static_cast<std::size_t>(r)];
  out.clear();
  std::size_t total = lane.tail.size();
  for (const TraceChunkPtr& c : lane.chunks) total += c->size();
  out.reserve(total);
  merge_chunks(lane.chunks, out);
  out.insert(out.end(), lane.tail.begin(), lane.tail.end());
}

std::size_t TraceStore::store_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) bytes += c->bytes();
    bytes += lane.tail.capacity() * sizeof(StateInterval);
  }
  return bytes;
}

void TraceStore::adopt_chunk(ResourceId r, TraceChunkPtr chunk) {
  if (r < 0 || static_cast<std::size_t>(r) >= lanes_.size()) {
    throw InvalidArgument("adopt_chunk: unknown resource id " +
                          std::to_string(r));
  }
  if (!chunk || chunk->size() == 0) {
    throw InvalidArgument("adopt_chunk: null or empty chunk");
  }
  lanes_[static_cast<std::size_t>(r)].chunks.push_back(std::move(chunk));
  sealed_ = false;
  ++generation_;
}

void TraceStore::enable_spill(std::string path) {
  if (path.empty()) {
    throw InvalidArgument("enable_spill: empty spill file path");
  }
  spill_path_ = std::move(path);
}

std::size_t TraceStore::spill_cold(std::size_t budget_bytes) {
  if (spill_path_.empty()) {
    throw InvalidArgument(
        "spill_cold: no spill file configured (call enable_spill first)");
  }
  struct Candidate {
    std::size_t lane;
    std::size_t index;
    TimeNs max_end;
  };
  std::vector<Candidate> candidates;
  std::size_t resident = 0;
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    const auto& chunks = lanes_[lane].chunks;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      if (!chunks[i]->resident()) continue;
      resident += chunks[i]->bytes();
      candidates.push_back({lane, i, chunks[i]->max_end()});
    }
  }
  if (resident <= budget_bytes) return 0;
  // Coldest first: the fence max-end is the last instant a window can
  // still need the chunk, so ascending order is an LRU over trace time.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.max_end < b.max_end;
                   });
  std::size_t spilled = 0;
  for (const Candidate& cand : candidates) {
    if (resident <= budget_bytes) break;
    TraceChunkPtr& slot = lanes_[cand.lane].chunks[cand.index];
    TraceChunkPtr mapped =
        spill_chunk_to_file(spill_path_, static_cast<ResourceId>(cand.lane),
                            *slot, states_.size());
    resident -= slot->bytes();
    slot = std::move(mapped);
    ++spilled;
  }
  if (spilled != 0) ++generation_;
  return spilled;
}

std::size_t TraceStore::pin(ResourceId r) {
  if (r < 0 || static_cast<std::size_t>(r) >= lanes_.size()) {
    throw InvalidArgument("pin: unknown resource id " + std::to_string(r));
  }
  std::size_t pinned = 0;
  for (TraceChunkPtr& chunk : lanes_[static_cast<std::size_t>(r)].chunks) {
    if (chunk->resident()) continue;
    chunk = make_resident(*chunk);
    ++pinned;
  }
  if (pinned != 0) ++generation_;
  return pinned;
}

std::size_t TraceStore::pin_all() {
  std::size_t pinned = 0;
  for (std::size_t r = 0; r < lanes_.size(); ++r) {
    pinned += pin(static_cast<ResourceId>(r));
  }
  return pinned;
}

std::size_t TraceStore::resident_chunk_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) {
      if (c->resident()) bytes += c->bytes();
    }
  }
  return bytes;
}

std::size_t TraceStore::spilled_chunk_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) {
      if (!c->resident()) bytes += c->bytes();
    }
  }
  return bytes;
}

}  // namespace stagg
