#include "trace/trace_store.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "trace/binary_io.hpp"

namespace stagg {

namespace {

/// Merges whole chunks into row-major `out` (appending) via the shared
/// canonical merge.  Cursor-based, so members of any backend — resident,
/// mapped, compressed — merge without being rehydrated first.
void merge_chunks(std::span<const TraceChunkPtr> chunks,
                  std::vector<StateInterval>& out) {
  std::vector<ChunkRun> runs;
  runs.reserve(chunks.size());
  for (const TraceChunkPtr& c : chunks) runs.push_back({c.get(), c->size()});
  merge_chunk_runs(std::span<const ChunkRun>(runs),
                   [&out](const StateInterval& s) { out.push_back(s); });
}

/// Resident copy of a (typically spilled) chunk.  An addressable chunk
/// comes back as raw heap columns; a compressed chunk stays compressed —
/// its encoded sections are copied to an owned heap buffer, so pinning
/// preserves the compression policy's footprint win.
TraceChunkPtr make_resident(const TraceChunk& chunk) {
  if (chunk.addressable()) {
    auto payload = std::make_shared<const ResidentChunkPayload>(
        std::vector<TimeNs>(chunk.begins().begin(), chunk.begins().end()),
        std::vector<TimeNs>(chunk.ends().begin(), chunk.ends().end()),
        std::vector<StateId>(chunk.states().begin(), chunk.states().end()));
    return std::make_shared<const TraceChunk>(
        std::move(payload), chunk.min_end(), chunk.max_end());
  }
  const auto* compressed =
      dynamic_cast<const CompressedChunkPayload*>(chunk.payload().get());
  if (compressed == nullptr) {
    throw InvalidArgument("make_resident: unknown non-addressable payload");
  }
  const ColumnsCoding& coding = compressed->coding();
  EncodedColumns enc;
  enc.count = coding.count;
  enc.begin_codec = coding.begin_codec;
  enc.end_codec = coding.end_codec;
  enc.state_codec = coding.state_codec;
  enc.begin_bytes = coding.begin_section.size();
  enc.end_bytes = coding.end_section.size();
  enc.state_bytes = coding.state_section.size();
  enc.bytes.reserve(coding.encoded_bytes());
  enc.bytes.insert(enc.bytes.end(), coding.begin_section.begin(),
                   coding.begin_section.end());
  enc.bytes.insert(enc.bytes.end(), coding.end_section.begin(),
                   coding.end_section.end());
  enc.bytes.insert(enc.bytes.end(), coding.state_section.begin(),
                   coding.state_section.end());
  auto payload =
      std::make_shared<const CompressedChunkPayload>(std::move(enc));
  return std::make_shared<const TraceChunk>(std::move(payload), chunk.first(),
                                            chunk.last(), chunk.min_end(),
                                            chunk.max_end());
}

}  // namespace

TraceChunk::TraceChunk(std::vector<TimeNs> begins, std::vector<TimeNs> ends,
                       std::vector<StateId> states) {
  if (begins.empty() || begins.size() != ends.size() ||
      begins.size() != states.size()) {
    throw InvalidArgument("TraceChunk: empty or mismatched columns");
  }
  min_end_ = std::numeric_limits<TimeNs>::max();
  max_end_ = std::numeric_limits<TimeNs>::min();
  for (const TimeNs e : ends) {
    min_end_ = std::min(min_end_, e);
    max_end_ = std::max(max_end_, e);
  }
  auto payload = std::make_shared<const ResidentChunkPayload>(
      std::move(begins), std::move(ends), std::move(states));
  begins_ = payload->begins();
  ends_ = payload->ends();
  states_ = payload->states();
  size_ = begins_.size();
  payload_ = std::move(payload);
  first_ = at(0);
  last_ = at(size_ - 1);
}

TraceChunk::TraceChunk(std::shared_ptr<const ChunkPayload> payload,
                       TimeNs min_end, TimeNs max_end)
    : payload_(std::move(payload)), min_end_(min_end), max_end_(max_end) {
  if (!payload_ || !payload_->addressable() || payload_->begins().empty() ||
      payload_->begins().size() != payload_->ends().size() ||
      payload_->begins().size() != payload_->states().size()) {
    throw InvalidArgument(
        "TraceChunk: empty, mismatched or non-addressable payload columns");
  }
  begins_ = payload_->begins();
  ends_ = payload_->ends();
  states_ = payload_->states();
  size_ = begins_.size();
  first_ = at(0);
  last_ = at(size_ - 1);
}

TraceChunk::TraceChunk(std::shared_ptr<const ChunkPayload> payload,
                       StateInterval first, StateInterval last, TimeNs min_end,
                       TimeNs max_end)
    : payload_(std::move(payload)),
      first_(first),
      last_(last),
      min_end_(min_end),
      max_end_(max_end) {
  if (!payload_ || payload_->size() == 0) {
    throw InvalidArgument("TraceChunk: null or empty payload");
  }
  size_ = payload_->size();
  if (payload_->addressable()) {
    begins_ = payload_->begins();
    ends_ = payload_->ends();
    states_ = payload_->states();
  }
}

std::shared_ptr<const TraceChunk> TraceChunk::from_sorted(
    std::span<const StateInterval> sorted) {
  std::vector<TimeNs> begins;
  std::vector<TimeNs> ends;
  std::vector<StateId> states;
  begins.reserve(sorted.size());
  ends.reserve(sorted.size());
  states.reserve(sorted.size());
  for (const StateInterval& s : sorted) {
    begins.push_back(s.begin);
    ends.push_back(s.end);
    states.push_back(s.state);
  }
  return std::make_shared<const TraceChunk>(
      std::move(begins), std::move(ends), std::move(states));
}

std::size_t TraceChunk::prefix_below(TimeNs t1, StateInterval* last) const {
  if (payload_->addressable()) {
    const std::size_t n = static_cast<std::size_t>(
        std::lower_bound(begins_.begin(), begins_.end(), t1) -
        begins_.begin());
    if (n > 0 && last != nullptr) *last = at(n - 1);
    return n;
  }
  // Whole-chunk fast path: the last (highest) begin is already below t1.
  if (last_.begin < t1) {
    if (last != nullptr) *last = last_;
    return size_;
  }
  // Streaming scan: begins are sorted, so stop at the first begin >= t1.
  std::size_t n = 0;
  StateInterval prev{};
  for (ChunkCursor cur(*this); cur.valid(); cur.next()) {
    if (cur.current().begin >= t1) break;
    prev = cur.current();
    ++n;
  }
  if (n > 0 && last != nullptr) *last = prev;
  return n;
}

ChunkCursor::ChunkCursor(const TraceChunk& chunk, std::size_t limit)
    : chunk_(&chunk), limit_(limit) {
  if (limit_ == 0) return;
  if (chunk.addressable()) {
    cur_ = chunk.at(0);
    return;
  }
  const auto* compressed =
      dynamic_cast<const CompressedChunkPayload*>(chunk.payload().get());
  if (compressed == nullptr) {
    throw InvalidArgument("ChunkCursor: unknown non-addressable payload");
  }
  decoder_.emplace(compressed->coding());
  decode_next();
}

void ChunkCursor::decode_next() {
  StateInterval out;
  if (!decoder_->next(out)) {
    pos_ = limit_;  // defensive: the payload count bounds limit_
    return;
  }
  cur_ = out;
}

ResourceId TraceStore::add_resource(std::string_view path) {
  if (const auto it = resource_ids_.find(std::string(path));
      it != resource_ids_.end()) {
    return it->second;
  }
  if (resource_paths_.use_count() > 1) {  // pinned by a view or a copy
    resource_paths_ =
        std::make_shared<std::vector<std::string>>(*resource_paths_);
  }
  const ResourceId id = static_cast<ResourceId>(resource_paths_->size());
  resource_paths_->emplace_back(path);
  resource_ids_.emplace(resource_paths_->back(), id);
  lanes_.emplace_back();
  sealed_ = false;
  ++generation_;
  return id;
}

ResourceId TraceStore::find_resource(std::string_view path) const {
  const auto it = resource_ids_.find(std::string(path));
  return it == resource_ids_.end() ? kInvalidResource : it->second;
}

void TraceStore::add_state(ResourceId resource, StateId state, TimeNs begin,
                           TimeNs end) {
  if (resource < 0 ||
      static_cast<std::size_t>(resource) >= resource_paths_->size()) {
    throw InvalidArgument("add_state: unknown resource id " +
                          std::to_string(resource));
  }
  if (state < 0 || static_cast<std::size_t>(state) >= states_.size()) {
    throw InvalidArgument("add_state: unknown state id " +
                          std::to_string(state));
  }
  if (end < begin) {
    throw InvalidArgument("add_state: end < begin");
  }
  lanes_[static_cast<std::size_t>(resource)].tail.push_back(
      StateInterval{begin, end, state});
  sealed_ = false;
  ++generation_;
}

void TraceStore::maybe_compress_into(TraceChunkPtr chunk,
                                     std::vector<TraceChunkPtr>& out,
                                     std::size_t block_intervals) const {
  if (compression_ != ChunkCompression::kAuto || !chunk->resident() ||
      !chunk->addressable()) {
    out.push_back(std::move(chunk));
    return;
  }
  const std::span<const TimeNs> begins = chunk->begins();
  const std::span<const TimeNs> ends = chunk->ends();
  const std::span<const StateId> states = chunk->states();
  const std::size_t n = begins.size();
  const std::size_t blocks = (n + block_intervals - 1) / block_intervals;
  std::vector<TraceChunkPtr> pieces;
  pieces.reserve(blocks);
  bool any_encoded = false;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * block_intervals;
    const std::size_t len = std::min(block_intervals, n - lo);
    EncodedColumns enc = encode_columns(begins.subspan(lo, len),
                                        ends.subspan(lo, len),
                                        states.subspan(lo, len));
    // Per-block fallback: keep raw columns when encoding does not shrink
    // them (the per-column raw candidates already bound each column, but
    // raw-resident avoids the cursor decode entirely).
    if (enc.encoded_bytes() >=
        len * (sizeof(TimeNs) * 2 + sizeof(StateId))) {
      pieces.push_back(std::make_shared<const TraceChunk>(
          std::vector<TimeNs>(begins.begin() + static_cast<std::ptrdiff_t>(lo),
                              begins.begin() +
                                  static_cast<std::ptrdiff_t>(lo + len)),
          std::vector<TimeNs>(ends.begin() + static_cast<std::ptrdiff_t>(lo),
                              ends.begin() +
                                  static_cast<std::ptrdiff_t>(lo + len)),
          std::vector<StateId>(states.begin() +
                                   static_cast<std::ptrdiff_t>(lo),
                               states.begin() +
                                   static_cast<std::ptrdiff_t>(lo + len))));
      continue;
    }
    any_encoded = true;
    const StateInterval first = enc.first;
    const StateInterval last = enc.last;
    const TimeNs min_end = enc.min_end;
    const TimeNs max_end = enc.max_end;
    auto payload =
        std::make_shared<const CompressedChunkPayload>(std::move(enc));
    pieces.push_back(std::make_shared<const TraceChunk>(
        std::move(payload), first, last, min_end, max_end));
  }
  // Nothing shrank: keep the original chunk whole (no gratuitous copies
  // or block splits of an incompressible run).
  if (!any_encoded) {
    out.push_back(std::move(chunk));
    return;
  }
  for (TraceChunkPtr& piece : pieces) out.push_back(std::move(piece));
}

void TraceStore::set_compression(ChunkCompression policy) {
  compression_ = policy;
  if (policy != ChunkCompression::kAuto) return;
  // Re-encode what is already sealed and resident, so a store that turns
  // compression on after ingest sees the footprint win immediately.
  bool changed = false;
  for (Lane& lane : lanes_) {
    std::vector<TraceChunkPtr> next;
    next.reserve(lane.chunks.size());
    bool lane_changed = false;
    for (TraceChunkPtr& chunk : lane.chunks) {
      const TraceChunk* original = chunk.get();
      const std::size_t before = next.size();
      maybe_compress_into(std::move(chunk), next);
      lane_changed = lane_changed || next.size() != before + 1 ||
                     next[before].get() != original;
    }
    lane.chunks = std::move(next);
    changed = changed || lane_changed;
  }
  if (changed) ++generation_;
  STAGG_AUDIT(audit());
}

void TraceStore::seal_chunk() {
  if (sealed_) return;
  // Per-lane unlink lists: compaction runs inside the parallel region, so
  // spill-record accounting is collected per lane and folded in serially.
  std::vector<std::vector<std::shared_ptr<const ChunkPayload>>> unlinked(
      lanes_.size());
  parallel_for(
      lanes_.size(),
      [this, &unlinked](std::size_t r) {
        Lane& lane = lanes_[r];
        if (!lane.tail.empty()) {
          // Horizon stickiness: an interval ending at or below the
          // eviction horizon can never be read by a legal window (views
          // reaching below the horizon are rejected), so sealing one —
          // e.g. staged after an eviction already passed it — would only
          // freeze dead weight.  Dropping it here is what keeps the
          // "every linked chunk's fence clears the horizon" invariant
          // exact (audit() checks it).
          if (evict_horizon_ != std::numeric_limits<TimeNs>::min()) {
            std::erase_if(lane.tail, [this](const StateInterval& s) {
              return s.end <= evict_horizon_;
            });
          }
        }
        if (!lane.tail.empty()) {
          std::sort(lane.tail.begin(), lane.tail.end(), interval_key_less);
          maybe_compress_into(TraceChunk::from_sorted(lane.tail),
                              lane.chunks);
          lane.tail.clear();
          lane.tail.shrink_to_fit();
        }
        if (lane.chunks.size() > kCompactionThreshold) {
          compact_lane(lane, unlinked[r]);
        }
      },
      /*grain=*/1);
  for (const auto& lane_unlinked : unlinked) {
    for (const auto& payload : lane_unlinked) note_unlinked(payload.get());
  }
  derive_window();
  sealed_ = true;
  ++generation_;
  maybe_compact_spill();
  STAGG_AUDIT(audit());
}

void TraceStore::compact_lane(
    Lane& lane,
    std::vector<std::shared_ptr<const ChunkPayload>>& unlinked) {
  // Size-tiered compaction: merge only as many of the *smallest* chunks
  // as it takes to halve the list.  Large merged chunks are re-merged
  // only once enough small ones accumulate past them, so streaming
  // ingest costs O(n log n) element copies overall — never the
  // re-merge-everything-every-16-seals quadratic blowup — and the
  // transient merge buffer holds a fraction of the lane, not all of it.
  const std::size_t target = kCompactionThreshold / 2;
  const std::size_t merge_count = lane.chunks.size() - target + 1;
  std::vector<std::size_t> order(lane.chunks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&lane](std::size_t a, std::size_t b) {
                     return lane.chunks[a]->size() < lane.chunks[b]->size();
                   });
  std::vector<std::uint8_t> picked(lane.chunks.size(), 0);
  for (std::size_t k = 0; k < merge_count; ++k) picked[order[k]] = 1;

  // The merge streams members through cursors, so spilled or compressed
  // members are read in place — no rehydration.  A merged-away member's
  // spill record (if any) becomes dead; the caller accounts it.
  std::vector<TraceChunkPtr> merge_set;
  merge_set.reserve(merge_count);
  std::size_t first_picked = lane.chunks.size();
  for (std::size_t i = 0; i < lane.chunks.size(); ++i) {
    if (picked[i] != 0) {
      if (first_picked == lane.chunks.size()) first_picked = i;
      merge_set.push_back(lane.chunks[i]);
      unlinked.push_back(lane.chunks[i]->payload());
    }
  }
  std::size_t total = 0;
  for (const TraceChunkPtr& c : merge_set) total += c->size();
  std::vector<StateInterval> merged;
  merged.reserve(total);
  merge_chunks(merge_set, merged);
  // Compaction is also the one place individually dead intervals of
  // straddling chunks are let go: anything ending at or before the
  // eviction horizon can never be read by a legal window again.
  std::erase_if(merged, [this](const StateInterval& s) {
    return s.end <= evict_horizon_;
  });

  // Rebuild: survivors keep their order; the merged chunk takes the slot
  // of its oldest member, preserving rough time order for the view
  // cursors' concatenation fast path.
  std::vector<TraceChunkPtr> next;
  next.reserve(lane.chunks.size() - merge_count + 1);
  for (std::size_t i = 0; i < lane.chunks.size(); ++i) {
    if (i == first_picked && !merged.empty()) {
      // Blocks capped at 8 per merge: fence granularity for the view,
      // but few enough that replacing merge_count (> 8) chunks still
      // shrinks the lane below the threshold — compaction keeps making
      // progress instead of re-triggering on its own output every seal.
      const std::size_t block = std::max(kCompressedBlockIntervals,
                                         (merged.size() + 7) / 8);
      maybe_compress_into(TraceChunk::from_sorted(merged), next, block);
    }
    if (picked[i] == 0) next.push_back(lane.chunks[i]);
  }
  lane.chunks = std::move(next);
}

bool TraceStore::tails_sealed() const noexcept {
  for (const Lane& lane : lanes_) {
    if (!lane.tail.empty()) return false;
  }
  return true;
}

void TraceStore::derive_window() {
  if (window_overridden_) return;
  TimeNs lo = std::numeric_limits<TimeNs>::max();
  TimeNs hi = std::numeric_limits<TimeNs>::min();
  bool any = false;
  for (const Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) {
      lo = std::min(lo, c->min_begin());
      hi = std::max(hi, c->max_end());
      any = true;
    }
    for (const StateInterval& s : lane.tail) {
      lo = std::min(lo, s.begin);
      hi = std::max(hi, s.end);
      any = true;
    }
  }
  begin_ = any ? lo : 0;
  end_ = any ? hi : 0;
}

void TraceStore::evict_before(TimeNs cutoff) {
  evict_horizon_ = std::max(evict_horizon_, cutoff);
  for (Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) {
      if (c->max_end() <= cutoff) note_unlinked(c->payload().get());
    }
    std::erase_if(lane.chunks, [cutoff](const TraceChunkPtr& c) {
      return c->max_end() <= cutoff;
    });
    std::erase_if(lane.tail, [cutoff](const StateInterval& s) {
      return s.end <= cutoff;
    });
  }
  // The auto-derived window may have spanned the evicted chunks; the next
  // seal re-derives it from the survivors.  An overridden window is the
  // caller's contract and stays put.
  if (!window_overridden_) sealed_ = false;
  ++generation_;
  maybe_compact_spill();
  STAGG_AUDIT(audit());
}

void TraceStore::erase_before_exact(TimeNs cutoff) {
  // Deliberately does NOT raise the eviction horizon: erase_before is a
  // point-in-time operation (the Trace facade contract) and must not
  // retroactively delete intervals appended after the call.  Only
  // evict_before — the forward-moving-window API — is sticky.
  for (Lane& lane : lanes_) {
    std::vector<TraceChunkPtr> kept;
    kept.reserve(lane.chunks.size());
    for (TraceChunkPtr& c : lane.chunks) {
      if (c->max_end() <= cutoff) {  // entirely dead
        note_unlinked(c->payload().get());
        continue;
      }
      if (c->min_end() > cutoff) {  // fence proves no dead entry
        kept.push_back(std::move(c));
        continue;
      }
      // Straddling: rewrite the surviving subsequence (still sorted).
      std::vector<StateInterval> survivors;
      survivors.reserve(c->size());
      for (ChunkCursor cur(*c); cur.valid(); cur.next()) {
        if (cur.current().end > cutoff) survivors.push_back(cur.current());
      }
      note_unlinked(c->payload().get());
      if (!survivors.empty()) {
        maybe_compress_into(TraceChunk::from_sorted(survivors), kept);
      }
    }
    lane.chunks = std::move(kept);
    std::erase_if(lane.tail, [cutoff](const StateInterval& s) {
      return s.end <= cutoff;
    });
  }
  if (!window_overridden_) sealed_ = false;
  ++generation_;
  maybe_compact_spill();
  STAGG_AUDIT(audit());
}

void TraceStore::set_window(TimeNs begin, TimeNs end) {
  if (end < begin) throw InvalidArgument("set_window: end < begin");
  begin_ = begin;
  end_ = end;
  window_overridden_ = true;
}

std::uint64_t TraceStore::state_count() const noexcept {
  std::uint64_t n = 0;
  for (const Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) n += c->size();
    n += lane.tail.size();
  }
  return n;
}

void TraceStore::materialize(ResourceId r,
                             std::vector<StateInterval>& out) const {
  const Lane& lane = lanes_[static_cast<std::size_t>(r)];
  out.clear();
  std::size_t total = lane.tail.size();
  for (const TraceChunkPtr& c : lane.chunks) total += c->size();
  out.reserve(total);
  merge_chunks(lane.chunks, out);
  out.insert(out.end(), lane.tail.begin(), lane.tail.end());
}

std::size_t TraceStore::store_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) bytes += c->stored_bytes();
    bytes += lane.tail.capacity() * sizeof(StateInterval);
  }
  return bytes;
}

void TraceStore::adopt_chunk(ResourceId r, TraceChunkPtr chunk) {
  if (r < 0 || static_cast<std::size_t>(r) >= lanes_.size()) {
    throw InvalidArgument("adopt_chunk: unknown resource id " +
                          std::to_string(r));
  }
  if (!chunk || chunk->size() == 0) {
    throw InvalidArgument("adopt_chunk: null or empty chunk");
  }
  lanes_[static_cast<std::size_t>(r)].chunks.push_back(std::move(chunk));
  sealed_ = false;
  ++generation_;
}

void TraceStore::enable_spill(std::string path) {
  if (path.empty()) {
    throw InvalidArgument("enable_spill: empty spill file path");
  }
  spill_path_ = std::move(path);
}

std::size_t TraceStore::spill_cold(std::size_t budget_bytes) {
  if (spill_path_.empty()) {
    throw InvalidArgument(
        "spill_cold: no spill file configured (call enable_spill first)");
  }
  struct Candidate {
    std::size_t lane;
    std::size_t index;
    TimeNs max_end;
  };
  std::vector<Candidate> candidates;
  std::size_t resident = 0;
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    const auto& chunks = lanes_[lane].chunks;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      if (!chunks[i]->resident()) continue;
      resident += chunks[i]->stored_bytes();
      candidates.push_back({lane, i, chunks[i]->max_end()});
    }
  }
  if (resident <= budget_bytes) return 0;
  // Coldest first: the fence max-end is the last instant a window can
  // still need the chunk, so ascending order is an LRU over trace time.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.max_end < b.max_end;
                   });
  std::size_t spilled = 0;
  for (const Candidate& cand : candidates) {
    if (resident <= budget_bytes) break;
    TraceChunkPtr& slot = lanes_[cand.lane].chunks[cand.index];
    SpilledChunkRecord rec =
        spill_chunk_to_file(spill_path_, static_cast<ResourceId>(cand.lane),
                            *slot, states_.size());
    spill_records_.emplace(rec.chunk->payload().get(), rec.record_bytes);
    spill_live_bytes_ += rec.record_bytes;
    // The freshly validated record's pages are hot but cold by definition
    // (we just decided this chunk is the least-needed one): hint the
    // kernel to reclaim them first.
    rec.chunk->advise(MapAdvice::kDontNeed);
    resident -= slot->stored_bytes();
    slot = std::move(rec.chunk);
    ++spilled;
  }
  if (spilled != 0) ++generation_;
  STAGG_AUDIT(audit());
  return spilled;
}

std::size_t TraceStore::pin(ResourceId r) {
  if (r < 0 || static_cast<std::size_t>(r) >= lanes_.size()) {
    throw InvalidArgument("pin: unknown resource id " + std::to_string(r));
  }
  std::size_t pinned = 0;
  for (TraceChunkPtr& chunk : lanes_[static_cast<std::size_t>(r)].chunks) {
    if (chunk->resident()) continue;
    note_unlinked(chunk->payload().get());
    chunk = make_resident(*chunk);
    ++pinned;
  }
  if (pinned != 0) {
    ++generation_;
    maybe_compact_spill();
    STAGG_AUDIT(audit());
  }
  return pinned;
}

std::size_t TraceStore::pin_all() {
  std::size_t pinned = 0;
  for (std::size_t r = 0; r < lanes_.size(); ++r) {
    pinned += pin(static_cast<ResourceId>(r));
  }
  return pinned;
}

std::size_t TraceStore::resident_chunk_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) {
      if (c->resident()) bytes += c->stored_bytes();
    }
  }
  return bytes;
}

std::size_t TraceStore::spilled_chunk_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const Lane& lane : lanes_) {
    for (const TraceChunkPtr& c : lane.chunks) {
      if (!c->resident()) bytes += c->stored_bytes();
    }
  }
  return bytes;
}

void TraceStore::note_unlinked(const ChunkPayload* payload) {
  const auto it = spill_records_.find(payload);
  if (it == spill_records_.end()) return;
  spill_live_bytes_ -= it->second;
  spill_dead_bytes_ += it->second;
  spill_records_.erase(it);
}

void TraceStore::maybe_compact_spill() {
  if (spill_path_.empty() || spill_dead_bytes_ == 0) return;
  if (spill_dead_bytes_ <= spill_live_bytes_) return;
  compact_spill();
}

void TraceStore::compact_spill() {
  // Rewrite the live records to a sibling temp file and rename it over
  // the spill path — the same crash-safety as chunk-file writes.  Old
  // mappings (this store's still-linked records and any outstanding
  // views) survive the rename: POSIX keeps the renamed-over inode's
  // pages alive as long as something maps them.
  const std::string tmp = spill_path_ + ".compact";
  std::remove(tmp.c_str());
  std::unordered_map<const ChunkPayload*, std::size_t> rewritten;
  std::size_t live = 0;
  bool wrote = false;
  for (std::size_t r = 0; r < lanes_.size(); ++r) {
    for (TraceChunkPtr& slot : lanes_[r].chunks) {
      if (spill_records_.find(slot->payload().get()) ==
          spill_records_.end()) {
        continue;
      }
      SpilledChunkRecord rec = spill_chunk_to_file(
          tmp, static_cast<ResourceId>(r), *slot, states_.size());
      rewritten.emplace(rec.chunk->payload().get(), rec.record_bytes);
      live += rec.record_bytes;
      rec.chunk->advise(MapAdvice::kDontNeed);
      slot = std::move(rec.chunk);
      wrote = true;
    }
  }
  if (wrote) {
    if (std::rename(tmp.c_str(), spill_path_.c_str()) != 0) {
      throw IoError("cannot rename '" + tmp + "' to '" + spill_path_ + "'");
    }
  } else {
    // Nothing live: the whole file was churn.  Drop it; the next spill
    // recreates it from the magic up.
    std::remove(spill_path_.c_str());
  }
  spill_records_ = std::move(rewritten);
  spill_live_bytes_ = live;
  spill_dead_bytes_ = 0;
  ++generation_;
}

void TraceStore::audit() const {
  const auto fail = [](const std::string& what) {
    throw ContractError("TraceStore::audit: " + what);
  };
  const auto same = [](const StateInterval& a, const StateInterval& b) {
    return a.begin == b.begin && a.end == b.end && a.state == b.state;
  };

  // Table consistency: one lane per path, the id map a bijection.
  if (lanes_.size() != resource_paths_->size()) {
    fail("lane count " + std::to_string(lanes_.size()) +
         " != resource count " + std::to_string(resource_paths_->size()));
  }
  if (resource_ids_.size() != resource_paths_->size()) {
    fail("resource id map has " + std::to_string(resource_ids_.size()) +
         " entries for " + std::to_string(resource_paths_->size()) +
         " paths");
  }
  for (const auto& [path, id] : resource_ids_) {
    if (id < 0 || static_cast<std::size_t>(id) >= resource_paths_->size() ||
        (*resource_paths_)[static_cast<std::size_t>(id)] != path) {
      fail("resource id map entry '" + path + "' -> " + std::to_string(id) +
           " does not match the path table");
    }
  }

  const TimeNs horizon_floor = std::numeric_limits<TimeNs>::min();
  std::unordered_set<const ChunkPayload*> linked;
  for (std::size_t r = 0; r < lanes_.size(); ++r) {
    const Lane& lane = lanes_[r];
    const std::string where = "resource " + std::to_string(r);
    for (std::size_t ci = 0; ci < lane.chunks.size(); ++ci) {
      const TraceChunkPtr& c = lane.chunks[ci];
      const std::string chunk_where =
          where + " chunk " + std::to_string(ci);
      if (!c || c->size() == 0) fail(chunk_where + " is null or empty");
      linked.insert(c->payload().get());
      // Stream through ChunkCursor so every backend — resident, mapped,
      // compressed — is audited through the exact path readers use.
      std::size_t n = 0;
      TimeNs min_end = std::numeric_limits<TimeNs>::max();
      TimeNs max_end = std::numeric_limits<TimeNs>::min();
      StateInterval prev{};
      StateInterval last{};
      for (ChunkCursor cur(*c); cur.valid(); cur.next()) {
        const StateInterval& s = cur.current();
        if (s.end < s.begin) {
          fail(chunk_where + " interval " + std::to_string(n) +
               " has end < begin");
        }
        if (s.state < 0 ||
            static_cast<std::size_t>(s.state) >= states_.size()) {
          fail(chunk_where + " interval " + std::to_string(n) +
               " names unregistered state " + std::to_string(s.state));
        }
        if (n > 0 && interval_key_less(s, prev)) {
          fail(chunk_where + " is not sorted by the total key at index " +
               std::to_string(n));
        }
        if (n == 0 && !same(s, c->first())) {
          fail(chunk_where + " cached first() differs from the streamed "
               "first interval");
        }
        min_end = std::min(min_end, s.end);
        max_end = std::max(max_end, s.end);
        prev = s;
        last = s;
        ++n;
      }
      if (n != c->size()) {
        fail(chunk_where + " streams " + std::to_string(n) +
             " intervals but reports size " + std::to_string(c->size()));
      }
      if (!same(last, c->last())) {
        fail(chunk_where + " cached last() differs from the streamed last "
             "interval");
      }
      if (c->min_end() != min_end || c->max_end() != max_end) {
        fail(chunk_where + " end fences [" + std::to_string(c->min_end()) +
             ", " + std::to_string(c->max_end()) +
             "] differ from the streamed [" + std::to_string(min_end) +
             ", " + std::to_string(max_end) + "]");
      }
      // Horizon stickiness: seal, evict and compaction all drop what no
      // legal window can read, so a linked chunk's fence clears the
      // horizon (skipped at the floor sentinel, where `<=` would reject
      // legitimate TimeNs-min data on a never-evicted store).
      if (evict_horizon_ != horizon_floor && c->max_end() <= evict_horizon_) {
        fail(chunk_where + " max end " + std::to_string(c->max_end()) +
             " is at or below the eviction horizon " +
             std::to_string(evict_horizon_));
      }
    }
    for (std::size_t ti = 0; ti < lane.tail.size(); ++ti) {
      const StateInterval& s = lane.tail[ti];
      if (s.end < s.begin) {
        fail(where + " tail interval " + std::to_string(ti) +
             " has end < begin");
      }
      if (s.state < 0 ||
          static_cast<std::size_t>(s.state) >= states_.size()) {
        fail(where + " tail interval " + std::to_string(ti) +
             " names unregistered state " + std::to_string(s.state));
      }
    }
  }

  if (sealed_ && !tails_sealed()) {
    fail("store reports sealed() with a non-empty tail");
  }

  // Spill accounting: live record bytes sum exactly, and every live
  // record's payload is still linked in some lane (a record surviving its
  // chunk would leak file bytes forever).
  std::size_t live = 0;
  for (const auto& [payload, bytes] : spill_records_) {
    live += bytes;
    if (linked.find(payload) == linked.end()) {
      fail("spill record of an unlinked chunk still counted live");
    }
  }
  if (live != spill_live_bytes_) {
    fail("spill records sum to " + std::to_string(live) +
         " live bytes but spill_live_bytes() reports " +
         std::to_string(spill_live_bytes_));
  }

  // Window: well-formed always; fence-exact when auto-derived and sealed.
  if (end_ < begin_) fail("window end precedes window begin");
  if (sealed_ && !window_overridden_) {
    TimeNs lo = std::numeric_limits<TimeNs>::max();
    TimeNs hi = std::numeric_limits<TimeNs>::min();
    bool any = false;
    for (const Lane& lane : lanes_) {
      for (const TraceChunkPtr& c : lane.chunks) {
        lo = std::min(lo, c->min_begin());
        hi = std::max(hi, c->max_end());
        any = true;
      }
    }
    const TimeNs want_begin = any ? lo : 0;
    const TimeNs want_end = any ? hi : 0;
    if (begin_ != want_begin || end_ != want_end) {
      fail("sealed auto-derived window [" + std::to_string(begin_) + ", " +
           std::to_string(end_) + ") differs from the fence-derived [" +
           std::to_string(want_begin) + ", " + std::to_string(want_end) +
           ")");
    }
  }
}

}  // namespace stagg
