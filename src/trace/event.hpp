// Event-level trace model (paper §III-A).
//
// Raw traces contain timestamped events; a *state* is a pair of events (an
// enter and a leave, e.g. an MPI function call and its return) attached to
// the resource that produced it.  The library stores states directly as
// half-open intervals [begin, end); the event count reported by statistics
// is 2x the state count, matching how Score-P counts the enter/leave records
// of Table II.
#pragma once

#include <cstdint>

namespace stagg {

/// Timestamps are signed 64-bit nanoseconds from the trace origin.
using TimeNs = std::int64_t;

/// Identifier of a state type (an entry of the StateRegistry).
using StateId = std::int32_t;

/// Identifier of a traced resource (index into the trace resource table;
/// aligned with hierarchy leaf ids by the model builder).
using ResourceId = std::int32_t;

inline constexpr StateId kNoState = -1;

/// Sentinel returned by resource lookups (Trace/TraceStore::find_resource)
/// when no resource is registered under the queried path.
inline constexpr ResourceId kInvalidResource = -1;

/// Converts seconds to the internal nanosecond timestamps.
[[nodiscard]] constexpr TimeNs seconds(double s) noexcept {
  return static_cast<TimeNs>(s * 1e9);
}

/// Converts internal timestamps back to seconds.
[[nodiscard]] constexpr double to_seconds(TimeNs t) noexcept {
  return static_cast<double>(t) * 1e-9;
}

/// One state occurrence: resource `r` was in state `state` over [begin, end).
struct StateInterval {
  TimeNs begin = 0;
  TimeNs end = 0;
  StateId state = kNoState;

  [[nodiscard]] constexpr TimeNs duration() const noexcept {
    return end - begin;
  }

  friend constexpr bool operator==(const StateInterval&,
                                   const StateInterval&) = default;
};

}  // namespace stagg
