#include "trace/compression.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <string>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"
#include "trace/codec_kernels.hpp"

namespace stagg {

namespace {

[[nodiscard]] std::uint64_t as_u(TimeNs v) noexcept {
  return static_cast<std::uint64_t>(v);
}

/// zigzag-varint size of one wrap-around difference.
[[nodiscard]] std::size_t zz_size(std::uint64_t diff) noexcept {
  return varint_size(zigzag_encode(static_cast<std::int64_t>(diff)));
}

void put_zz(std::vector<std::uint8_t>& out, std::uint64_t diff) {
  put_varint(out, zigzag_encode(static_cast<std::int64_t>(diff)));
}

void append_raw(std::vector<std::uint8_t>& out, const void* data,
                std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + n);
}

// --- Time-column planning over materialized difference streams -------------
// The SIMD pre-pass (trace/codec_kernels.hpp) computes every candidate
// stream once, already zigzag-folded; all delta arithmetic stays in
// wrap-around uint64, so columns touching the int64 range limits still
// round-trip (C++20 two's-complement conversions).  Measuring a codec is
// then a varint-size sum and encoding it replays the same array — the
// emitted bytes are identical to the historical per-value walk.

std::size_t varint_sum(const std::uint64_t* zz, std::size_t n) noexcept {
  std::size_t s = 0;
  for (std::size_t i = 0; i < n; ++i) s += varint_size(zz[i]);
  return s;
}

void put_varints(std::vector<std::uint8_t>& out, const std::uint64_t* zz,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) put_varint(out, zz[i]);
}

struct TimePlan {
  TimeCodec codec = TimeCodec::kRaw;
  std::size_t size = 0;
};

void consider(TimePlan& best, TimeCodec codec, std::size_t size) {
  if (size < best.size) best = {codec, size};
}

}  // namespace

bool time_codec_valid(std::uint8_t tag) noexcept {
  return tag <= time_codec_tag(TimeCodec::kGapFromPrevEnd);
}

bool state_codec_valid(std::uint8_t tag) noexcept {
  return tag <= state_codec_tag(StateCodec::kDictBitpack);
}

const char* time_codec_name(TimeCodec codec) noexcept {
  switch (codec) {
    case TimeCodec::kRaw:
      return "raw";
    case TimeCodec::kDelta:
      return "delta";
    case TimeCodec::kDeltaOfDelta:
      return "delta-of-delta";
    case TimeCodec::kConst:
      return "const";
    case TimeCodec::kGapFromPrevEnd:
      return "gap";
  }
  return "?";
}

const char* state_codec_name(StateCodec codec) noexcept {
  switch (codec) {
    case StateCodec::kRaw:
      return "raw";
    case StateCodec::kDictRle:
      return "dict-rle";
    case StateCodec::kDictBitpack:
      return "dict-bitpack";
  }
  return "?";
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(wrap_u8(v | 0x80));
    v >>= 7;
  }
  out.push_back(narrow<std::uint8_t>(v));
}

std::size_t varint_size(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

EncodedColumns encode_columns(std::span<const TimeNs> begins,
                              std::span<const TimeNs> ends,
                              std::span<const StateId> states) {
  const std::size_t n = begins.size();
  if (n == 0 || ends.size() != n || states.size() != n) {
    throw InvalidArgument("encode_columns: empty or mismatched columns");
  }

  // --- Pre-pass: every candidate stream, zigzag-folded, in one SIMD walk
  // per column (see codec_kernels.hpp for why this is exact).
  simd::AlignedVec<std::uint64_t> beg_delta(n);
  simd::AlignedVec<std::uint64_t> beg_dod(n);
  simd::AlignedVec<std::uint64_t> beg_gap(n);
  simd::AlignedVec<std::uint64_t> dur(n);
  simd::AlignedVec<std::uint64_t> dur_delta(n);
  simd::AlignedVec<std::uint64_t> dur_dod(n);

  const bool beg_const = codec::all_equal_u64(
      reinterpret_cast<const std::uint64_t*>(begins.data()), n);
  codec::delta_column(begins.data(), n, beg_delta.data());
  codec::delta_u64(beg_delta.data(), n, beg_dod.data());
  if (n > 1) beg_dod[1] = beg_delta[1];  // second-order starts at i = 2
  beg_gap[0] = as_u(begins[0]);
  codec::sub_columns(begins.data() + 1, ends.data(), n - 1, beg_gap.data() + 1);
  codec::zigzag_u64(beg_delta.data(), n);
  codec::zigzag_u64(beg_dod.data(), n);
  codec::zigzag_u64(beg_gap.data(), n);

  codec::sub_columns(ends.data(), begins.data(), n, dur.data());
  const bool dur_const = codec::all_equal_u64(dur.data(), n);
  const std::uint64_t dur0 = dur[0];
  codec::delta_u64(dur.data(), n, dur_delta.data());
  codec::delta_u64(dur_delta.data(), n, dur_dod.data());
  if (n > 1) dur_dod[1] = dur_delta[1];
  codec::zigzag_u64(dur_delta.data(), n);
  codec::zigzag_u64(dur_dod.data(), n);

  // --- Begin column: raw begins vs delta family vs gap-from-prev-end.
  TimePlan begin_plan{TimeCodec::kRaw, n * 8};
  if (beg_const) {
    consider(begin_plan, TimeCodec::kConst, zz_size(as_u(begins[0])));
  }
  consider(begin_plan, TimeCodec::kDelta, varint_sum(beg_delta.data(), n));
  consider(begin_plan, TimeCodec::kDeltaOfDelta, varint_sum(beg_dod.data(), n));
  consider(begin_plan, TimeCodec::kGapFromPrevEnd,
           varint_sum(beg_gap.data(), n));

  // --- End column: raw ends vs the delta family over durations.
  TimePlan end_plan{TimeCodec::kRaw, n * 8};
  if (dur_const) {
    consider(end_plan, TimeCodec::kConst, zz_size(dur0));
  }
  consider(end_plan, TimeCodec::kDelta, varint_sum(dur_delta.data(), n));
  consider(end_plan, TimeCodec::kDeltaOfDelta, varint_sum(dur_dod.data(), n));

  // --- State column: raw ids vs dictionary + RLE / bitpack.
  std::vector<StateId> dict(states.begin(), states.end());
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  std::size_t dict_header = varint_size(dict.size());
  for (const StateId s : dict) {
    dict_header += varint_size(zigzag_encode(s));
  }
  // One counting-compare pass resolves every value's dictionary index;
  // the RLE and bitpack paths below reuse it instead of re-searching.
  simd::AlignedVec<std::int32_t> dict_idx(n);
  codec::dict_indices(states.data(), n, dict.data(), dict.size(),
                      dict_idx.data());
  std::size_t rle_size = dict_header;
  {
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && states[j] == states[i]) ++j;
      rle_size += varint_size(static_cast<std::uint64_t>(dict_idx[i])) +
                  varint_size(j - i);
      i = j;
    }
  }
  const std::uint32_t pack_width =
      dict.size() > 1
          ? narrow<std::uint32_t>(std::bit_width(dict.size() - 1))
          : 0u;
  const std::size_t pack_size =
      dict_header + (n * pack_width + 7) / 8;
  StateCodec state_codec = StateCodec::kRaw;
  std::size_t state_size = n * 4;
  if (rle_size < state_size) {
    state_codec = StateCodec::kDictRle;
    state_size = rle_size;
  }
  if (pack_size < state_size) {
    state_codec = StateCodec::kDictBitpack;
    state_size = pack_size;
  }

  EncodedColumns out;
  out.count = n;
  out.begin_codec = begin_plan.codec;
  out.end_codec = end_plan.codec;
  out.state_codec = state_codec;
  out.bytes.reserve(begin_plan.size + end_plan.size + state_size);

  switch (begin_plan.codec) {
    case TimeCodec::kRaw:
      append_raw(out.bytes, begins.data(), begins.size_bytes());
      break;
    case TimeCodec::kDelta:
      put_varints(out.bytes, beg_delta.data(), n);
      break;
    case TimeCodec::kDeltaOfDelta:
      put_varints(out.bytes, beg_dod.data(), n);
      break;
    case TimeCodec::kConst:
      put_zz(out.bytes, as_u(begins[0]));
      break;
    case TimeCodec::kGapFromPrevEnd:
      put_varints(out.bytes, beg_gap.data(), n);
      break;
  }
  out.begin_bytes = out.bytes.size();

  switch (end_plan.codec) {
    case TimeCodec::kRaw:
      append_raw(out.bytes, ends.data(), ends.size_bytes());
      break;
    case TimeCodec::kDelta:
      put_varints(out.bytes, dur_delta.data(), n);
      break;
    case TimeCodec::kDeltaOfDelta:
      put_varints(out.bytes, dur_dod.data(), n);
      break;
    case TimeCodec::kConst:
      put_zz(out.bytes, dur0);
      break;
    case TimeCodec::kGapFromPrevEnd:
      break;  // unreachable: never planned for the end column
  }
  out.end_bytes = out.bytes.size() - out.begin_bytes;

  switch (state_codec) {
    case StateCodec::kRaw:
      append_raw(out.bytes, states.data(), states.size_bytes());
      break;
    case StateCodec::kDictRle: {
      put_varint(out.bytes, dict.size());
      for (const StateId s : dict) put_varint(out.bytes, zigzag_encode(s));
      std::size_t i = 0;
      while (i < n) {
        std::size_t j = i + 1;
        while (j < n && states[j] == states[i]) ++j;
        put_varint(out.bytes, static_cast<std::uint64_t>(dict_idx[i]));
        put_varint(out.bytes, j - i);
        i = j;
      }
      break;
    }
    case StateCodec::kDictBitpack: {
      put_varint(out.bytes, dict.size());
      for (const StateId s : dict) put_varint(out.bytes, zigzag_encode(s));
      std::uint64_t acc = 0;
      std::uint32_t bits = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto idx = static_cast<std::uint64_t>(dict_idx[i]);
        acc |= idx << bits;
        bits += pack_width;
        while (bits >= 8) {
          out.bytes.push_back(wrap_u8(acc));
          acc >>= 8;
          bits -= 8;
        }
      }
      if (bits > 0) out.bytes.push_back(wrap_u8(acc));
      break;
    }
  }
  out.state_bytes = out.bytes.size() - out.begin_bytes - out.end_bytes;

  out.first = {begins.front(), ends.front(), states.front()};
  out.last = {begins.back(), ends.back(), states.back()};
  codec::minmax_i64(ends.data(), n, out.min_end, out.max_end);
  return out;
}

// --- ColumnsDecoder --------------------------------------------------------

ColumnsDecoder::ColumnsDecoder(const ColumnsCoding& coding)
    : count_(coding.count),
      begin_codec_(coding.begin_codec),
      end_codec_(coding.end_codec),
      state_codec_(coding.state_codec),
      begin_cur_{coding.begin_section, 0},
      end_cur_{coding.end_section, 0},
      state_cur_{coding.state_section, 0} {
  if (end_codec_ == TimeCodec::kGapFromPrevEnd) {
    throw TraceFormatError(
        "invalid codec for the end column (gap-from-prev-end)");
  }
  if (state_codec_ != StateCodec::kRaw && count_ > 0) {
    const std::uint64_t dict_count =
        take_varint(state_cur_, "state dictionary");
    if (dict_count == 0 || dict_count > count_) {
      throw TraceFormatError("implausible state dictionary size " +
                             std::to_string(dict_count));
    }
    dict_.reserve(static_cast<std::size_t>(dict_count));
    for (std::uint64_t i = 0; i < dict_count; ++i) {
      const std::int64_t id =
          zigzag_decode(take_varint(state_cur_, "state dictionary"));
      if (id < 0 || id > std::numeric_limits<StateId>::max()) {
        throw TraceFormatError("state dictionary entry " + std::to_string(id) +
                               " outside the StateId range");
      }
      dict_.push_back(narrow<StateId>(id));
    }
    pack_width_ = dict_.size() > 1 ? narrow<std::uint32_t>(
                                         std::bit_width(dict_.size() - 1))
                                   : 0u;
  }
}

std::uint64_t ColumnsDecoder::take_varint(SectionCursor& cur,
                                          const char* what) {
  std::uint64_t v = 0;
  std::uint32_t shift = 0;
  for (;;) {
    if (cur.pos >= cur.bytes.size()) {
      throw TraceFormatError(std::string("truncated varint in encoded ") +
                             what);
    }
    const std::uint8_t b = cur.bytes[cur.pos++];
    if (shift == 63 && (b & ~std::uint8_t{1}) != 0) {
      throw TraceFormatError(std::string("overlong varint in encoded ") +
                             what);
    }
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

TimeNs ColumnsDecoder::next_begin() {
  switch (begin_codec_) {
    case TimeCodec::kRaw: {
      if (begin_cur_.pos + 8 > begin_cur_.bytes.size()) {
        throw TraceFormatError("truncated encoded begin column");
      }
      TimeNs v = 0;
      std::memcpy(&v, begin_cur_.bytes.data() + begin_cur_.pos, 8);
      begin_cur_.pos += 8;
      return v;
    }
    case TimeCodec::kDelta:
      if (produced_ == 0) {
        prev_begin_ = static_cast<std::uint64_t>(
            zigzag_decode(take_varint(begin_cur_, "begin column")));
      } else {
        prev_begin_ += static_cast<std::uint64_t>(
            zigzag_decode(take_varint(begin_cur_, "begin column")));
      }
      return static_cast<TimeNs>(prev_begin_);
    case TimeCodec::kDeltaOfDelta:
      if (produced_ == 0) {
        prev_begin_ = static_cast<std::uint64_t>(
            zigzag_decode(take_varint(begin_cur_, "begin column")));
      } else {
        if (produced_ == 1) {
          prev_begin_delta_ = static_cast<std::uint64_t>(
              zigzag_decode(take_varint(begin_cur_, "begin column")));
        } else {
          prev_begin_delta_ += static_cast<std::uint64_t>(
              zigzag_decode(take_varint(begin_cur_, "begin column")));
        }
        prev_begin_ += prev_begin_delta_;
      }
      return static_cast<TimeNs>(prev_begin_);
    case TimeCodec::kConst:
      if (produced_ == 0) {
        const_begin_ = static_cast<std::uint64_t>(
            zigzag_decode(take_varint(begin_cur_, "begin column")));
      }
      return static_cast<TimeNs>(const_begin_);
    case TimeCodec::kGapFromPrevEnd:
      if (produced_ == 0) {
        prev_begin_ = static_cast<std::uint64_t>(
            zigzag_decode(take_varint(begin_cur_, "begin column")));
      } else {
        prev_begin_ = prev_end_ + static_cast<std::uint64_t>(zigzag_decode(
                                      take_varint(begin_cur_, "begin column")));
      }
      return static_cast<TimeNs>(prev_begin_);
  }
  throw TraceFormatError("unknown begin-column codec");
}

TimeNs ColumnsDecoder::next_end(TimeNs begin) {
  switch (end_codec_) {
    case TimeCodec::kRaw: {
      if (end_cur_.pos + 8 > end_cur_.bytes.size()) {
        throw TraceFormatError("truncated encoded end column");
      }
      TimeNs v = 0;
      std::memcpy(&v, end_cur_.bytes.data() + end_cur_.pos, 8);
      end_cur_.pos += 8;
      return v;
    }
    case TimeCodec::kDelta:
      if (produced_ == 0) {
        prev_duration_ = static_cast<std::uint64_t>(
            zigzag_decode(take_varint(end_cur_, "end column")));
      } else {
        prev_duration_ += static_cast<std::uint64_t>(
            zigzag_decode(take_varint(end_cur_, "end column")));
      }
      return static_cast<TimeNs>(as_u(begin) + prev_duration_);
    case TimeCodec::kDeltaOfDelta:
      if (produced_ == 0) {
        prev_duration_ = static_cast<std::uint64_t>(
            zigzag_decode(take_varint(end_cur_, "end column")));
      } else {
        if (produced_ == 1) {
          prev_duration_delta_ = static_cast<std::uint64_t>(
              zigzag_decode(take_varint(end_cur_, "end column")));
        } else {
          prev_duration_delta_ += static_cast<std::uint64_t>(
              zigzag_decode(take_varint(end_cur_, "end column")));
        }
        prev_duration_ += prev_duration_delta_;
      }
      return static_cast<TimeNs>(as_u(begin) + prev_duration_);
    case TimeCodec::kConst:
      if (produced_ == 0) {
        const_duration_ = static_cast<std::uint64_t>(
            zigzag_decode(take_varint(end_cur_, "end column")));
      }
      return static_cast<TimeNs>(as_u(begin) + const_duration_);
    case TimeCodec::kGapFromPrevEnd:
      break;  // rejected in the constructor
  }
  throw TraceFormatError("unknown end-column codec");
}

StateId ColumnsDecoder::next_state() {
  switch (state_codec_) {
    case StateCodec::kRaw: {
      if (state_cur_.pos + 4 > state_cur_.bytes.size()) {
        throw TraceFormatError("truncated encoded state column");
      }
      StateId v = 0;
      std::memcpy(&v, state_cur_.bytes.data() + state_cur_.pos, 4);
      state_cur_.pos += 4;
      return v;
    }
    case StateCodec::kDictRle: {
      if (run_remaining_ == 0) {
        const std::uint64_t idx = take_varint(state_cur_, "state column");
        const std::uint64_t len = take_varint(state_cur_, "state column");
        if (idx >= dict_.size()) {
          throw TraceFormatError("state run references dictionary entry " +
                                 std::to_string(idx) + " of " +
                                 std::to_string(dict_.size()));
        }
        if (len == 0 || len > count_ - produced_) {
          throw TraceFormatError("state run length " + std::to_string(len) +
                                 " does not fit the chunk");
        }
        run_value_ = dict_[static_cast<std::size_t>(idx)];
        run_remaining_ = len;
      }
      --run_remaining_;
      return run_value_;
    }
    case StateCodec::kDictBitpack: {
      if (pack_bits_ < pack_width_ && pack_width_ <= 32 &&
          state_cur_.pos + 8 <= state_cur_.bytes.size()) {
        // Wide refill: the byte loop below consumes exactly
        // ceil((width - bits) / 8) bytes, so when at least a full word
        // remains in the section one unaligned little-endian load (the
        // same byte order kRaw columns already assume) grabs them all.
        // After every extraction pack_bits_ < 8, so with width <= 32 the
        // shifted insert stays within the 64-bit accumulator.
        const std::size_t need_bytes =
            (static_cast<std::size_t>(pack_width_ - pack_bits_) + 7) / 8;
        std::uint64_t word = 0;
        std::memcpy(&word, state_cur_.bytes.data() + state_cur_.pos, 8);
        const std::uint64_t mask =
            (std::uint64_t{1} << (need_bytes * 8)) - 1;
        pack_acc_ |= (word & mask) << pack_bits_;
        pack_bits_ += narrow<std::uint32_t>(need_bytes * 8);
        state_cur_.pos += need_bytes;
      }
      while (pack_bits_ < pack_width_) {
        if (state_cur_.pos >= state_cur_.bytes.size()) {
          throw TraceFormatError("truncated encoded state column");
        }
        pack_acc_ |= static_cast<std::uint64_t>(
                         state_cur_.bytes[state_cur_.pos++])
                     << pack_bits_;
        pack_bits_ += 8;
      }
      const std::uint64_t idx =
          pack_width_ == 0
              ? 0
              : pack_acc_ & ((std::uint64_t{1} << pack_width_) - 1);
      pack_acc_ >>= pack_width_;
      pack_bits_ -= pack_width_;
      if (idx >= dict_.size()) {
        throw TraceFormatError("bit-packed state index " +
                               std::to_string(idx) +
                               " outside the dictionary");
      }
      return dict_[static_cast<std::size_t>(idx)];
    }
  }
  throw TraceFormatError("unknown state-column codec");
}

void ColumnsDecoder::check_drained() const {
  if (begin_cur_.pos != begin_cur_.bytes.size()) {
    throw TraceFormatError("trailing bytes in encoded begin column");
  }
  if (end_cur_.pos != end_cur_.bytes.size()) {
    throw TraceFormatError("trailing bytes in encoded end column");
  }
  if (state_cur_.pos != state_cur_.bytes.size()) {
    throw TraceFormatError("trailing bytes in encoded state column");
  }
  if (run_remaining_ != 0) {
    throw TraceFormatError("state run extends past the chunk");
  }
}

bool ColumnsDecoder::next(StateInterval& out) {
  if (produced_ >= count_) return false;
  const TimeNs b = next_begin();
  const TimeNs e = next_end(b);
  const StateId s = next_state();
  out = {b, e, s};
  prev_end_ = as_u(e);
  ++produced_;
  if (produced_ == count_) check_drained();
  return true;
}

}  // namespace stagg
