#include "trace/trace_view.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "trace/sharded_store.hpp"

namespace stagg {

namespace {

void check_store(const std::shared_ptr<const TraceStore>& store) {
  if (!store) throw InvalidArgument("TraceView: null store");
  if (!store->tails_sealed()) {
    throw InvalidArgument(
        "TraceView: store has unsealed tail intervals (call seal_chunk() "
        "before taking views)");
  }
}

}  // namespace

TraceView::TraceView(std::shared_ptr<const TraceStore> store)
    : store_(std::move(store)) {
  check_store(store_);
  if (!store_->sealed()) {
    throw InvalidArgument(
        "TraceView: full-window view requires a sealed store "
        "(call seal_chunk() first)");
  }
  t0_ = store_->begin();
  t1_ = store_->end();
  init({}, nullptr);
}

TraceView::TraceView(std::shared_ptr<const TraceStore> store, TimeNs t0,
                     TimeNs t1)
    : TraceView(std::move(store), t0, t1, {}, nullptr) {}

TraceView::TraceView(std::shared_ptr<const TraceStore> store, TimeNs t0,
                     TimeNs t1, std::span<const ResourceId> scope,
                     std::shared_ptr<const std::vector<std::string>>
                         scope_paths)
    : store_(std::move(store)), t0_(t0), t1_(t1) {
  check_store(store_);
  if (t1_ < t0_) throw InvalidArgument("TraceView: window end < begin");
  init(scope, std::move(scope_paths));
}

TraceView::TraceView(std::shared_ptr<const ShardedTraceStore> sharded,
                     TimeNs t0, TimeNs t1, std::span<const ResourceId> scope,
                     std::shared_ptr<const std::vector<std::string>>
                         scope_paths)
    : t0_(t0), t1_(t1) {
  if (!sharded) throw InvalidArgument("TraceView: null sharded store");
  sharded_ = std::move(sharded);
  store_ = sharded_->shard_ptr(0);
  if (!sharded_->tails_sealed()) {
    throw InvalidArgument(
        "TraceView: sharded store has unsealed tail intervals (call "
        "seal_chunk() before taking views)");
  }
  if (t1_ < t0_) throw InvalidArgument("TraceView: window end < begin");
  init(scope, std::move(scope_paths));
}

void TraceView::init(
    std::span<const ResourceId> scope,
    std::shared_ptr<const std::vector<std::string>> scope_paths) {
  const auto n = sharded_ != nullptr ? sharded_->resource_count()
                                     : store_->resource_count();
  if (scope.empty()) {
    store_ids_.resize(n);
    for (std::size_t r = 0; r < n; ++r) {
      store_ids_[r] = static_cast<ResourceId>(r);
    }
    // COW-pinned, zero copies (the facade's global table when sharded).
    paths_ = sharded_ != nullptr ? sharded_->resource_paths_ptr()
                                 : store_->resource_paths_ptr();
    select_runs();
    return;
  }
  store_ids_.assign(scope.begin(), scope.end());
  for (const ResourceId r : store_ids_) {
    if (r < 0 || static_cast<std::size_t>(r) >= n) {
      throw InvalidArgument("TraceView: scope references unknown resource " +
                            std::to_string(r));
    }
  }
  if (scope_paths != nullptr) {
    if (scope_paths->size() != store_ids_.size()) {
      throw InvalidArgument(
          "TraceView: scope_paths size does not match the scope");
    }
    paths_ = std::move(scope_paths);
  } else {
    auto paths = std::make_shared<std::vector<std::string>>();
    paths->reserve(store_ids_.size());
    for (const ResourceId r : store_ids_) {
      paths->push_back(sharded_ != nullptr ? sharded_->resource_path(r)
                                           : store_->resource_path(r));
    }
    paths_ = std::move(paths);
  }
  select_runs();
}

std::span<const TraceChunkPtr> TraceView::chunks_of(
    std::size_t view_resource) const {
  const ResourceId id = store_ids_[view_resource];
  if (sharded_ != nullptr) {
    const ShardedTraceStore::Route rt = sharded_->route(id);
    return sharded_->shard(rt.shard).chunks(rt.local);
  }
  return store_->chunks(id);
}

void TraceView::select_runs() {
  runs_.resize(store_ids_.size());
  concat_ok_.assign(store_ids_.size(), 1);
  for (std::size_t r = 0; r < store_ids_.size(); ++r) {
    auto& runs = runs_[r];
    runs.clear();
    for (const TraceChunkPtr& chunk : chunks_of(r)) {
      // Fence test: can any interval of this chunk overlap [t0, t1)?
      if (chunk->min_begin() >= t1_ || chunk->max_end() <= t0_) continue;
      // Begins are sorted: entries with begin >= t1 are a prunable suffix.
      Run run{chunk, 0, chunk->first(), chunk->first(), 0};
      run.size = chunk->prefix_below(t1_, &run.last);
      if (run.size == 0) continue;
      if (!chunk->resident()) {
        // The cursors read this file-backed run front-to-back, starting
        // now: tell the pager.
        chunk->advise(MapAdvice::kSequential);
        chunk->advise(MapAdvice::kWillNeed);
      }
      if (!chunk->addressable()) {
        run.scratch = ChunkCursor(*chunk, 1).scratch_bytes();
      }
      runs.push_back(std::move(run));
    }
    for (std::size_t k = 0; k + 1 < runs.size(); ++k) {
      if (interval_key_less(runs[k + 1].first, runs[k].last)) {
        concat_ok_[r] = 0;
        break;
      }
    }
  }
}

std::uint64_t TraceView::selected_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& runs : runs_) {
    for (const Run& run : runs) n += run.size;
  }
  return n;
}

std::size_t TraceView::spilled_run_count() const noexcept {
  std::size_t n = 0;
  for (const auto& runs : runs_) {
    for (const Run& run : runs) n += run.chunk->resident() ? 0 : 1;
  }
  return n;
}

std::size_t TraceView::compressed_run_count() const noexcept {
  std::size_t n = 0;
  for (const auto& runs : runs_) {
    for (const Run& run : runs) n += run.chunk->addressable() ? 0 : 1;
  }
  return n;
}

std::size_t TraceView::cursor_scratch_bytes() const noexcept {
  // for_each streams one resource at a time; the merge path holds every
  // run's cursor of that resource at once, so the worst resource bounds
  // the live scratch.
  std::size_t worst = 0;
  for (const auto& runs : runs_) {
    std::size_t total = 0;
    for (const Run& run : runs) total += run.scratch;
    worst = std::max(worst, total);
  }
  return worst;
}

}  // namespace stagg
