// CSV trace exchange format (Pajé-dump-like).
//
// Human-readable sibling of the binary format, used for interoperability and
// small fixtures:
//
//   # stagg-trace-csv v1
//   # window,<begin_ns>,<end_ns>
//   STATE,<resource_path>,<state_name>,<begin_ns>,<end_ns>
//
// Lines starting with '#' are comments; fields are comma-separated with no
// quoting.  Resource paths and state names therefore must not contain
// commas or line breaks: the writer rejects such names with a
// TraceFormatError (rather than emitting a file the reader would reject or
// silently mis-parse), and the reader rejects records with a field-count
// mismatch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace stagg {

/// Writes `trace` as CSV.  Returns bytes written.  Seals the trace.
std::uint64_t write_csv_trace(Trace& trace, const std::string& path);

/// Serializes to a stream (used by tests).
void write_csv_trace(Trace& trace, std::ostream& os);

/// Parses a CSV trace file.
[[nodiscard]] Trace read_csv_trace(const std::string& path);

/// Parses from a stream.
[[nodiscard]] Trace read_csv_trace(std::istream& is,
                                   const std::string& context = "<stream>");

}  // namespace stagg
