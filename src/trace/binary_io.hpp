// Binary trace formats: the row-record format ("STGT") and the columnar
// chunk-file format ("STGC"), plus the spill-file primitives behind
// TraceStore::spill_cold.
//
// STGT — compact row records, the library's OTF2 stand-in (little-endian):
//   header:   magic "STGTRC01" | u64 resource_count | u64 state_count
//             | i64 window_begin | i64 window_end | u64 record_count
//   tables:   resource paths then state names, each u32-length-prefixed UTF-8
//   records:  record_count x { u32 resource | u32 state | i64 begin | i64 end }
//
// Records are 24 bytes; Table II's "trace size" column is reproduced from
// this format.  The reader offers both a materializing API and a streaming
// API (fixed-size chunks through a callback) so the microscopic model can be
// built from traces larger than memory.
//
// STGC — versioned columnar chunk files, the dariadb-style sealed-page
// format an mmapped TraceStore reads in place (little-endian).
//
// Version 2 (magic "STGCHK02") — written by this library; each column
// section carries its own codec tag (trace/compression.hpp):
//   header:   magic "STGCHK02" | u64 resource_count | u64 state_count
//             | i64 window_begin | i64 window_end | u64 chunk_count
//   tables:   as STGT, then zero padding to the next 8-byte boundary
//   chunks:   chunk_count x chunk record
// One v2 chunk record (72-byte header; every section start 8-byte aligned
// so raw sections are usable in place):
//   header:   u32 resource | u8 begin_codec | u8 end_codec | u8 state_codec
//             | u8 flags (0) | u64 count | i64 min_begin | i64 min_end
//             | i64 max_end | u64 begin_bytes | u64 end_bytes
//             | u64 state_bytes | u64 checksum
//   sections: begin section | pad to 8 | end section | pad to 8
//             | state section | pad to 8
// The checksum is FNV-1a 64 over the three *unpadded* encoded sections in
// order (for an all-raw record this equals the v1 column checksum).  An
// all-raw record opens zero-copy as mapped columns; any other codec
// combination opens as a compressed (cursor-streamed) chunk pointing into
// the mapping.  Readers fully streaming-decode every record at open —
// section bounds, checksum, codec tags, varint/dictionary well-formedness,
// the (begin, end, state) sort order and all three fences — and reject
// truncation and corruption loudly with the offending file offset.
//
// Version 1 (magic "STGCHK01", 40-byte record header: u32 resource |
// u32 reserved | u64 count | i64 min_end | i64 max_end | u64 checksum,
// followed by raw padded columns) is still opened zero-copy; writers
// always emit v2.
//
// The same record layout, behind magics "STGSPL02"/"STGSPL01", makes up a
// store's append-only spill file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/state_registry.hpp"
#include "trace/stream_decode.hpp"
#include "trace/trace.hpp"
#include "trace/trace_store.hpp"

namespace stagg {

/// One on-disk record paired with its resource (streaming API).  The
/// record section is decoded by the resumable StgtRecordDecoder
/// (stream_decode.hpp) — the whole-file reader here and the pipeline's
/// byte-range shard decode share one record grammar and validation.
using TraceRecord = StgtRecord;

/// Static description decoded from a trace file header + tables.
struct TraceFileInfo {
  std::vector<std::string> resource_paths;
  StateRegistry states;
  TimeNs window_begin = 0;
  TimeNs window_end = 0;
  std::uint64_t record_count = 0;
};

/// Writes `trace` to `path`.  Returns the number of bytes written.
/// The trace is sealed first if needed.
std::uint64_t write_binary_trace(Trace& trace, const std::string& path);

/// Reads a full trace file into memory.  Throws TraceFormatError/IoError.
[[nodiscard]] Trace read_binary_trace(const std::string& path);

/// Streams a trace file into an immutable chunked store: records are
/// appended to the resource tails and sealed every `chunk_records`
/// records, so the result arrives pre-chunked and shared-ready (back it
/// with TraceViews / a SessionManager) while peak mutable memory stays
/// bounded by one record chunk plus the store's size-tiered compaction
/// buffer.  The interval multiset — and therefore every model fold — is
/// bit-identical to read_binary_trace.
///
/// Chunk files (STGC) take a zero-copy path instead: the file is mmapped
/// once and the store's chunks read the validated records in place
/// (resident_chunk_bytes() == 0 — no rehydration), exactly as
/// open_chunk_file_store does.  `chunk_records` only applies to STGT.
[[nodiscard]] std::shared_ptr<TraceStore> read_binary_trace_store(
    const std::string& path, std::size_t chunk_records = 1 << 16);

// --- Chunk files (STGC) and spill records --------------------------------

/// Writes the store's sealed chunks to a columnar chunk file at `path`
/// (per-resource chunk lists in order; tails are sealed first).  Returns
/// the number of bytes written.  The result reopens zero-copy via
/// open_chunk_file_store / read_binary_trace_store.
std::uint64_t write_chunk_file(TraceStore& store, const std::string& path);

/// Opens a chunk file zero-copy: maps the whole file, validates every
/// record (bounds, checksum, sort order, fences — throws TraceFormatError
/// naming the file offset on truncation or corruption) and builds a store
/// whose chunks read the mapped columns in place.  The store starts fully
/// spilled: resident_chunk_bytes() == 0; pin_all() rehydrates on demand.
[[nodiscard]] std::shared_ptr<TraceStore> open_chunk_file_store(
    const std::string& path);

/// True when the file at `path` starts with the chunk-file magic.
/// Throws IoError when the file cannot be opened.
[[nodiscard]] bool is_chunk_file(const std::string& path);

/// Result of one spill append: the file-backed chunk plus the exact
/// on-disk record size (the store's spill-occupancy accounting needs it
/// to decide when to compact the file).
struct SpilledChunkRecord {
  TraceChunkPtr chunk;
  std::uint64_t record_bytes = 0;
};

/// Appends one chunk (raw or compressed — the record keeps the chunk's
/// encoding) to the append-only spill file at `path` (created with the
/// spill magic on first use; a pre-existing file must carry that magic
/// and an 8-aligned size, or the append is refused), then maps the
/// freshly written record back and returns the file-backed chunk — the
/// backend swap behind TraceStore::spill_cold.  The mapped record is
/// re-validated (against `state_count` registry entries), so a torn
/// write fails loudly here, not at stream time.
[[nodiscard]] SpilledChunkRecord spill_chunk_to_file(const std::string& path,
                                                     ResourceId resource,
                                                     const TraceChunk& chunk,
                                                     std::uint64_t state_count);

/// Decodes only the header and tables.
[[nodiscard]] TraceFileInfo read_binary_trace_info(const std::string& path);

/// Streams the records of a trace file through `sink` in file order,
/// `chunk_records` at a time.  Returns the decoded file info.  The spans
/// passed to `sink` are only valid during the call.
TraceFileInfo stream_binary_trace(
    const std::string& path,
    const std::function<void(std::span<const TraceRecord>)>& sink,
    std::size_t chunk_records = 1 << 16);

}  // namespace stagg
