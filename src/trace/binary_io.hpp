// Compact binary trace format ("STGT"), the library's OTF2 stand-in.
//
// Layout (little-endian):
//   header:   magic "STGTRC01" | u64 resource_count | u64 state_count
//             | i64 window_begin | i64 window_end | u64 record_count
//   tables:   resource paths then state names, each u32-length-prefixed UTF-8
//   records:  record_count x { u32 resource | u32 state | i64 begin | i64 end }
//
// Records are 24 bytes; Table II's "trace size" column is reproduced from
// this format.  The reader offers both a materializing API and a streaming
// API (fixed-size chunks through a callback) so the microscopic model can be
// built from traces larger than memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/state_registry.hpp"
#include "trace/trace.hpp"
#include "trace/trace_store.hpp"

namespace stagg {

/// One on-disk record paired with its resource (streaming API).
struct TraceRecord {
  ResourceId resource;
  StateInterval interval;
};

/// Static description decoded from a trace file header + tables.
struct TraceFileInfo {
  std::vector<std::string> resource_paths;
  StateRegistry states;
  TimeNs window_begin = 0;
  TimeNs window_end = 0;
  std::uint64_t record_count = 0;
};

/// Writes `trace` to `path`.  Returns the number of bytes written.
/// The trace is sealed first if needed.
std::uint64_t write_binary_trace(Trace& trace, const std::string& path);

/// Reads a full trace file into memory.  Throws TraceFormatError/IoError.
[[nodiscard]] Trace read_binary_trace(const std::string& path);

/// Streams a trace file into an immutable chunked store: records are
/// appended to the resource tails and sealed every `chunk_records`
/// records, so the result arrives pre-chunked and shared-ready (back it
/// with TraceViews / a SessionManager) while peak mutable memory stays
/// bounded by one record chunk plus the store's size-tiered compaction
/// buffer.  The interval multiset — and therefore every model fold — is
/// bit-identical to read_binary_trace.
[[nodiscard]] std::shared_ptr<TraceStore> read_binary_trace_store(
    const std::string& path, std::size_t chunk_records = 1 << 16);

/// Decodes only the header and tables.
[[nodiscard]] TraceFileInfo read_binary_trace_info(const std::string& path);

/// Streams the records of a trace file through `sink` in file order,
/// `chunk_records` at a time.  Returns the decoded file info.  The spans
/// passed to `sink` are only valid during the call.
TraceFileInfo stream_binary_trace(
    const std::string& path,
    const std::function<void(std::span<const TraceRecord>)>& sink,
    std::size_t chunk_records = 1 << 16);

}  // namespace stagg
