// Pajé dump reader — the trace format the Ocelotl tool actually consumes
// (the paper's §V pipeline is Score-P -> OTF2 -> pj_dump -> Ocelotl).
//
// pj_dump emits one CSV-ish line per object; the subset relevant to the
// microscopic model is the State record:
//
//   State, <container>, <type>, <begin>, <end>, <duration>, <imbrication>, <value>
//
// e.g.  State, rennes/parapide-1/rank12, STATE, 2.115601, 2.116015, 0.000414, 0, MPI_Send
//
// Container events (Container, ...), variables (Variable, ...), links and
// point events (Event, ...) are skipped — the spatiotemporal model of the
// paper only consumes states.  Timestamps are seconds (doubles), converted
// to the library's nanosecond timeline.  Container names become resource
// paths verbatim.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace stagg {

/// Statistics of a Pajé parse (what was consumed vs skipped).
struct PajeReadStats {
  std::uint64_t state_records = 0;
  std::uint64_t skipped_records = 0;  ///< containers, variables, links, ...
  std::uint64_t comment_lines = 0;
};

/// Parses a pj_dump file.  Throws TraceFormatError on malformed State
/// records; unknown record kinds are counted and skipped.
[[nodiscard]] Trace read_paje_dump(const std::string& path,
                                   PajeReadStats* stats = nullptr);

/// Parses from a stream (tests).
[[nodiscard]] Trace read_paje_dump(std::istream& is,
                                   const std::string& context = "<stream>",
                                   PajeReadStats* stats = nullptr);

/// Writes a trace as a pj_dump-compatible State list (round-trip support
/// and interoperability with Pajé-ecosystem tools).
void write_paje_dump(Trace& trace, std::ostream& os);
std::uint64_t write_paje_dump(Trace& trace, const std::string& path);

}  // namespace stagg
