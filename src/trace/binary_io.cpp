#include "trace/binary_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/error.hpp"

namespace stagg {
namespace {

constexpr char kMagic[8] = {'S', 'T', 'G', 'T', 'R', 'C', '0', '1'};
constexpr std::size_t kRecordBytes = 4 + 4 + 8 + 8;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_file(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw IoError("cannot open '" + path + "'");
  return f;
}

void write_bytes(std::FILE* f, const void* data, std::size_t n,
                 const std::string& path) {
  if (std::fwrite(data, 1, n, f) != n) {
    throw IoError("short write to '" + path + "'");
  }
}

void read_bytes(std::FILE* f, void* data, std::size_t n,
                const std::string& path) {
  if (std::fread(data, 1, n, f) != n) {
    throw TraceFormatError("truncated file '" + path + "'");
  }
}

template <typename T>
void write_pod(std::FILE* f, T v, const std::string& path) {
  write_bytes(f, &v, sizeof v, path);
}

template <typename T>
T read_pod(std::FILE* f, const std::string& path) {
  T v{};
  read_bytes(f, &v, sizeof v, path);
  return v;
}

void write_string(std::FILE* f, const std::string& s, const std::string& path) {
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(s.size()), path);
  write_bytes(f, s.data(), s.size(), path);
}

std::string read_string(std::FILE* f, const std::string& path) {
  const auto len = read_pod<std::uint32_t>(f, path);
  if (len > (1u << 20)) {
    throw TraceFormatError("string too long in '" + path + "'");
  }
  std::string s(len, '\0');
  read_bytes(f, s.data(), len, path);
  return s;
}

void encode_record(std::uint8_t* out, ResourceId r, const StateInterval& s) {
  const std::uint32_t ur = static_cast<std::uint32_t>(r);
  const std::uint32_t ux = static_cast<std::uint32_t>(s.state);
  std::memcpy(out, &ur, 4);
  std::memcpy(out + 4, &ux, 4);
  std::memcpy(out + 8, &s.begin, 8);
  std::memcpy(out + 16, &s.end, 8);
}

TraceRecord decode_record(const std::uint8_t* in) {
  std::uint32_t ur = 0, ux = 0;
  TimeNs begin = 0, end = 0;
  std::memcpy(&ur, in, 4);
  std::memcpy(&ux, in + 4, 4);
  std::memcpy(&begin, in + 8, 8);
  std::memcpy(&end, in + 16, 8);
  return {static_cast<ResourceId>(ur),
          StateInterval{begin, end, static_cast<StateId>(ux)}};
}

TraceFileInfo read_header(std::FILE* f, const std::string& path) {
  char magic[8];
  read_bytes(f, magic, sizeof magic, path);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw TraceFormatError("bad magic in '" + path + "'");
  }
  TraceFileInfo info;
  const auto resource_count = read_pod<std::uint64_t>(f, path);
  const auto state_count = read_pod<std::uint64_t>(f, path);
  info.window_begin = read_pod<TimeNs>(f, path);
  info.window_end = read_pod<TimeNs>(f, path);
  info.record_count = read_pod<std::uint64_t>(f, path);
  if (resource_count > (1ull << 32) || state_count > (1ull << 20)) {
    throw TraceFormatError("implausible table sizes in '" + path + "'");
  }
  info.resource_paths.reserve(resource_count);
  for (std::uint64_t i = 0; i < resource_count; ++i) {
    info.resource_paths.push_back(read_string(f, path));
  }
  for (std::uint64_t i = 0; i < state_count; ++i) {
    info.states.intern(read_string(f, path));
  }
  return info;
}

}  // namespace

std::uint64_t write_binary_trace(Trace& trace, const std::string& path) {
  trace.seal();
  FilePtr f = open_file(path, "wb");

  write_bytes(f.get(), kMagic, sizeof kMagic, path);
  write_pod<std::uint64_t>(f.get(), trace.resource_count(), path);
  write_pod<std::uint64_t>(f.get(), trace.states().size(), path);
  write_pod<TimeNs>(f.get(), trace.begin(), path);
  write_pod<TimeNs>(f.get(), trace.end(), path);
  write_pod<std::uint64_t>(f.get(), trace.state_count(), path);
  for (const auto& p : trace.resource_paths()) write_string(f.get(), p, path);
  for (const auto& s : trace.states().names()) write_string(f.get(), s, path);

  // Buffered record emission, resource-major (file order is deterministic).
  constexpr std::size_t kBufRecords = 1 << 15;
  std::vector<std::uint8_t> buf(kBufRecords * kRecordBytes);
  std::size_t in_buf = 0;
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    for (const auto& s : trace.intervals(r)) {
      encode_record(buf.data() + in_buf * kRecordBytes, r, s);
      if (++in_buf == kBufRecords) {
        write_bytes(f.get(), buf.data(), in_buf * kRecordBytes, path);
        in_buf = 0;
      }
    }
  }
  if (in_buf != 0) {
    write_bytes(f.get(), buf.data(), in_buf * kRecordBytes, path);
  }
  const long pos = std::ftell(f.get());
  if (pos < 0) throw IoError("ftell failed on '" + path + "'");
  return static_cast<std::uint64_t>(pos);
}

TraceFileInfo read_binary_trace_info(const std::string& path) {
  FilePtr f = open_file(path, "rb");
  return read_header(f.get(), path);
}

TraceFileInfo stream_binary_trace(
    const std::string& path,
    const std::function<void(std::span<const TraceRecord>)>& sink,
    std::size_t chunk_records) {
  FilePtr f = open_file(path, "rb");
  TraceFileInfo info = read_header(f.get(), path);

  std::vector<std::uint8_t> buf(chunk_records * kRecordBytes);
  std::vector<TraceRecord> records;
  records.reserve(chunk_records);

  std::uint64_t remaining = info.record_count;
  const auto n_resources = info.resource_paths.size();
  const auto n_states = info.states.size();
  while (remaining > 0) {
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, chunk_records));
    read_bytes(f.get(), buf.data(), take * kRecordBytes, path);
    records.clear();
    for (std::size_t i = 0; i < take; ++i) {
      TraceRecord rec = decode_record(buf.data() + i * kRecordBytes);
      if (static_cast<std::size_t>(rec.resource) >= n_resources) {
        throw TraceFormatError("record references unknown resource in '" +
                               path + "'");
      }
      if (static_cast<std::size_t>(rec.interval.state) >= n_states) {
        throw TraceFormatError("record references unknown state in '" + path +
                               "'");
      }
      if (rec.interval.end < rec.interval.begin) {
        throw TraceFormatError("record with end < begin in '" + path + "'");
      }
      records.push_back(rec);
    }
    sink({records.data(), records.size()});
    remaining -= take;
  }
  return info;
}

std::shared_ptr<TraceStore> read_binary_trace_store(const std::string& path,
                                                    std::size_t chunk_records) {
  const TraceFileInfo info = read_binary_trace_info(path);
  auto store = std::make_shared<TraceStore>();
  for (const auto& p : info.resource_paths) store->add_resource(p);
  for (const auto& s : info.states.names()) store->states().intern(s);
  std::uint64_t staged = 0;
  stream_binary_trace(
      path,
      [&](std::span<const TraceRecord> chunk) {
        for (const auto& rec : chunk) {
          store->add_state(rec.resource, rec.interval.state,
                           rec.interval.begin, rec.interval.end);
        }
        staged += chunk.size();
        if (staged >= chunk_records) {
          store->seal_chunk();
          staged = 0;
        }
      },
      chunk_records);
  store->set_window(info.window_begin, info.window_end);
  store->seal_chunk();
  return store;
}

Trace read_binary_trace(const std::string& path) {
  // Register tables before records: decode the header once, then stream the
  // records into the trace (ids in the file are dense and file-ordered, so
  // they coincide with the registration order).
  const TraceFileInfo info = read_binary_trace_info(path);
  Trace out;
  for (const auto& p : info.resource_paths) out.add_resource(p);
  for (const auto& s : info.states.names()) out.states().intern(s);
  stream_binary_trace(
      path,
      [&](std::span<const TraceRecord> chunk) {
        for (const auto& rec : chunk) {
          out.add_state(rec.resource, rec.interval.state, rec.interval.begin,
                        rec.interval.end);
        }
      },
      /*chunk_records=*/1 << 16);
  out.set_window(info.window_begin, info.window_end);
  out.seal();
  return out;
}

}  // namespace stagg
