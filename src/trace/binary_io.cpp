#include "trace/binary_io.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/mapped_file.hpp"
#include "trace/stream_decode.hpp"

namespace stagg {
namespace {

constexpr char kMagic[8] = {'S', 'T', 'G', 'T', 'R', 'C', '0', '1'};
constexpr char kChunkMagicV1[8] = {'S', 'T', 'G', 'C', 'H', 'K', '0', '1'};
constexpr char kChunkMagic[8] = {'S', 'T', 'G', 'C', 'H', 'K', '0', '2'};
constexpr char kSpillMagic[8] = {'S', 'T', 'G', 'S', 'P', 'L', '0', '2'};
constexpr std::size_t kRecordBytes = 4 + 4 + 8 + 8;
static_assert(kRecordBytes == StgtRecordDecoder::kRecordBytes,
              "STGT record framing is shared with the resumable decoder");
/// v1 chunk record header: u32 resource | u32 reserved | u64 count |
/// i64 min_end | i64 max_end | u64 checksum.  40 bytes, 8-aligned.
constexpr std::size_t kChunkHeaderBytesV1 = 40;
/// v2 chunk record header: u32 resource | u8 begin_codec | u8 end_codec |
/// u8 state_codec | u8 flags | u64 count | i64 min_begin | i64 min_end |
/// i64 max_end | u64 begin_bytes | u64 end_bytes | u64 state_bytes |
/// u64 checksum.  72 bytes, 8-aligned.
constexpr std::size_t kChunkHeaderBytes = 72;

constexpr std::uint64_t pad8(std::uint64_t n) {
  return (n + 7) & ~std::uint64_t{7};
}

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_file(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw IoError("cannot open '" + path + "'");
  return f;
}

void write_bytes(std::FILE* f, const void* data, std::size_t n,
                 const std::string& path) {
  if (std::fwrite(data, 1, n, f) != n) {
    throw IoError("short write to '" + path + "'");
  }
}

void read_bytes(std::FILE* f, void* data, std::size_t n,
                const std::string& path) {
  const long at = std::ftell(f);
  if (std::fread(data, 1, n, f) != n) {
    throw TraceFormatError("truncated file '" + path + "' at offset " +
                           std::to_string(at));
  }
}

template <typename T>
void write_pod(std::FILE* f, T v, const std::string& path) {
  write_bytes(f, &v, sizeof v, path);
}

template <typename T>
T read_pod(std::FILE* f, const std::string& path) {
  T v{};
  read_bytes(f, &v, sizeof v, path);
  return v;
}

void write_string(std::FILE* f, const std::string& s, const std::string& path) {
  write_pod<std::uint32_t>(f, narrow<std::uint32_t>(s.size()), path);
  write_bytes(f, s.data(), s.size(), path);
}

std::string read_string(std::FILE* f, const std::string& path) {
  const auto len = read_pod<std::uint32_t>(f, path);
  if (len > (1u << 20)) {
    throw TraceFormatError("string too long in '" + path + "'");
  }
  std::string s(len, '\0');
  read_bytes(f, s.data(), len, path);
  return s;
}

void encode_record(std::uint8_t* out, ResourceId r, const StateInterval& s) {
  const auto ur = narrow<std::uint32_t>(r);
  const auto ux = narrow<std::uint32_t>(s.state);
  std::memcpy(out, &ur, 4);
  std::memcpy(out + 4, &ux, 4);
  std::memcpy(out + 8, &s.begin, 8);
  std::memcpy(out + 16, &s.end, 8);
}

TraceFileInfo read_header(std::FILE* f, const std::string& path) {
  char magic[8];
  read_bytes(f, magic, sizeof magic, path);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw TraceFormatError("bad magic in '" + path + "'");
  }
  TraceFileInfo info;
  const auto resource_count = read_pod<std::uint64_t>(f, path);
  const auto state_count = read_pod<std::uint64_t>(f, path);
  info.window_begin = read_pod<TimeNs>(f, path);
  info.window_end = read_pod<TimeNs>(f, path);
  info.record_count = read_pod<std::uint64_t>(f, path);
  if (resource_count > (1ull << 32) || state_count > (1ull << 20)) {
    throw TraceFormatError("implausible table sizes in '" + path + "'");
  }
  // The count is untrusted until the table entries actually parse: a
  // 48-byte file declaring 2^32 resources must die with a loud truncation
  // error at the first missing entry, not take down the process with
  // bad_alloc from a speculative 100+ GB reserve (found by fuzzing).
  info.resource_paths.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(resource_count, 4096)));
  for (std::uint64_t i = 0; i < resource_count; ++i) {
    info.resource_paths.push_back(read_string(f, path));
  }
  for (std::uint64_t i = 0; i < state_count; ++i) {
    info.states.intern(read_string(f, path));
  }
  return info;
}

// --- Chunk records (shared by chunk files and spill files) -----------------

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;

/// Column checksum: FNV-1a 64 over the raw begin, end then state bytes
/// (padding excluded).
std::uint64_t chunk_checksum(std::span<const TimeNs> begins,
                             std::span<const TimeNs> ends,
                             std::span<const StateId> states) {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a(begins.data(), begins.size_bytes(), h);
  h = fnv1a(ends.data(), ends.size_bytes(), h);
  h = fnv1a(states.data(), states.size_bytes(), h);
  return h;
}

/// Total on-disk bytes of one v1 chunk record (header + columns + pad).
std::size_t chunk_record_bytes_v1(std::uint64_t count) {
  const std::uint64_t states_padded = pad8(count * 4);
  return static_cast<std::size_t>(kChunkHeaderBytesV1 + count * 16 +
                                  states_padded);
}

/// The codec tags and raw section bytes a v2 record stores for one chunk:
/// the raw columns of an addressable chunk, the encoded blocks of a
/// compressed one — records preserve the chunk's in-memory encoding,
/// never re-encode.
struct ChunkSections {
  TimeCodec begin_codec = TimeCodec::kRaw;
  TimeCodec end_codec = TimeCodec::kRaw;
  StateCodec state_codec = StateCodec::kRaw;
  std::span<const std::uint8_t> begin;
  std::span<const std::uint8_t> end;
  std::span<const std::uint8_t> state;
};

ChunkSections chunk_sections(const TraceChunk& chunk) {
  ChunkSections s;
  if (chunk.addressable()) {
    s.begin = {reinterpret_cast<const std::uint8_t*>(chunk.begins().data()),
               chunk.begins().size_bytes()};
    s.end = {reinterpret_cast<const std::uint8_t*>(chunk.ends().data()),
             chunk.ends().size_bytes()};
    s.state = {reinterpret_cast<const std::uint8_t*>(chunk.states().data()),
               chunk.states().size_bytes()};
    return s;
  }
  const auto* compressed =
      dynamic_cast<const CompressedChunkPayload*>(chunk.payload().get());
  if (compressed == nullptr) {
    throw InvalidArgument("chunk record: unknown non-addressable payload");
  }
  const ColumnsCoding& coding = compressed->coding();
  s.begin_codec = coding.begin_codec;
  s.end_codec = coding.end_codec;
  s.state_codec = coding.state_codec;
  s.begin = coding.begin_section;
  s.end = coding.end_section;
  s.state = coding.state_section;
  return s;
}

/// Total on-disk bytes of one v2 chunk record.
std::uint64_t chunk_record_bytes_v2(std::uint64_t begin_bytes,
                                    std::uint64_t end_bytes,
                                    std::uint64_t state_bytes) {
  return kChunkHeaderBytes + pad8(begin_bytes) + pad8(end_bytes) +
         pad8(state_bytes);
}

void write_chunk_record(std::FILE* f, const std::string& path,
                        ResourceId resource, const TraceChunk& chunk) {
  ChunkSections sec = chunk_sections(chunk);
  std::uint64_t checksum = kFnvOffsetBasis;
  checksum = fnv1a(sec.begin.data(), sec.begin.size(), checksum);
  checksum = fnv1a(sec.end.data(), sec.end.size(), checksum);
  checksum = fnv1a(sec.state.data(), sec.state.size(), checksum);

  std::uint8_t header[kChunkHeaderBytes] = {};
  const auto ur = narrow<std::uint32_t>(resource);
  const auto count = static_cast<std::uint64_t>(chunk.size());
  const TimeNs min_begin = chunk.min_begin();
  const TimeNs min_end = chunk.min_end();
  const TimeNs max_end = chunk.max_end();
  const std::uint64_t begin_bytes = sec.begin.size();
  const std::uint64_t end_bytes = sec.end.size();
  const std::uint64_t state_bytes = sec.state.size();
  std::memcpy(header, &ur, 4);
  header[4] = time_codec_tag(sec.begin_codec);
  header[5] = time_codec_tag(sec.end_codec);
  header[6] = state_codec_tag(sec.state_codec);
  header[7] = 0;  // flags
  std::memcpy(header + 8, &count, 8);
  std::memcpy(header + 16, &min_begin, 8);
  std::memcpy(header + 24, &min_end, 8);
  std::memcpy(header + 32, &max_end, 8);
  std::memcpy(header + 40, &begin_bytes, 8);
  std::memcpy(header + 48, &end_bytes, 8);
  std::memcpy(header + 56, &state_bytes, 8);
  std::memcpy(header + 64, &checksum, 8);
  write_bytes(f, header, sizeof header, path);
  const std::uint8_t zeros[8] = {};
  for (const std::span<const std::uint8_t> section :
       {sec.begin, sec.end, sec.state}) {
    write_bytes(f, section.data(), section.size(), path);
    const std::uint64_t pad = pad8(section.size()) - section.size();
    if (pad != 0) write_bytes(f, zeros, static_cast<std::size_t>(pad), path);
  }
}

struct MappedChunkRecord {
  ResourceId resource = kInvalidResource;
  TraceChunkPtr chunk;
  std::size_t record_bytes = 0;
};

/// Validates and maps one *v1* chunk record at `pos` inside `region`
/// (whose data() starts at `region_file_offset` in the file) and wraps it
/// into a file-backed chunk.  Rejects truncated payloads, checksum
/// mismatches, unsorted columns, out-of-table state ids (`state_count`
/// entries) and lying fences loudly — every error names the record's
/// file offset.
MappedChunkRecord map_chunk_record_v1(
    const std::shared_ptr<const MappedRegion>& region, std::size_t pos,
    std::uint64_t region_file_offset, const std::string& path,
    std::uint64_t state_count) {
  const std::uint64_t file_offset = region_file_offset + pos;
  const auto offset_str = " in '" + path + "' at offset " +
                          std::to_string(file_offset);
  const std::uint8_t* base = region->data();
  const std::size_t avail = region->size();
  if (pos + kChunkHeaderBytesV1 > avail) {
    throw TraceFormatError("truncated chunk header" + offset_str);
  }
  std::uint32_t ur = 0;
  std::uint64_t count = 0;
  TimeNs min_end = 0;
  TimeNs max_end = 0;
  std::uint64_t checksum = 0;
  std::memcpy(&ur, base + pos, 4);
  std::memcpy(&count, base + pos + 8, 8);
  std::memcpy(&min_end, base + pos + 16, 8);
  std::memcpy(&max_end, base + pos + 24, 8);
  std::memcpy(&checksum, base + pos + 32, 8);
  if (count == 0) {
    throw TraceFormatError("empty chunk record" + offset_str);
  }
  // Guard the size arithmetic before computing record_bytes: a huge count
  // must read as truncation, not overflow into a small number.
  if (count > (avail - pos) / 16) {
    throw TraceFormatError("truncated chunk payload" + offset_str +
                           " (count " + std::to_string(count) +
                           " exceeds the file)");
  }
  const std::size_t record_bytes = chunk_record_bytes_v1(count);
  if (pos + record_bytes > avail) {
    throw TraceFormatError("truncated chunk payload" + offset_str);
  }
  const auto n = static_cast<std::size_t>(count);
  const auto* begins =
      reinterpret_cast<const TimeNs*>(base + pos + kChunkHeaderBytesV1);
  const auto* ends = begins + n;
  const auto* states = reinterpret_cast<const StateId*>(ends + n);
  const std::span<const TimeNs> begin_col(begins, n);
  const std::span<const TimeNs> end_col(ends, n);
  const std::span<const StateId> state_col(states, n);
  const std::uint64_t computed = chunk_checksum(begin_col, end_col, state_col);
  if (computed != checksum) {
    throw TraceFormatError(
        "chunk checksum mismatch" + offset_str + " (stored " +
        std::to_string(checksum) + ", computed " + std::to_string(computed) +
        ")");
  }
  // One pass re-deriving what the merge cursors rely on: total-key sort
  // order and true end fences.
  TimeNs seen_min_end = end_col[0];
  TimeNs seen_max_end = end_col[0];
  for (std::size_t i = 0; i < n; ++i) {
    if (end_col[i] < begin_col[i]) {
      throw TraceFormatError("chunk interval with end < begin" + offset_str);
    }
    if (state_col[i] < 0 ||
        static_cast<std::uint64_t>(state_col[i]) >= state_count) {
      throw TraceFormatError("chunk interval references unknown state " +
                             std::to_string(state_col[i]) + offset_str);
    }
    seen_min_end = std::min(seen_min_end, end_col[i]);
    seen_max_end = std::max(seen_max_end, end_col[i]);
    if (i + 1 < n &&
        interval_key_less({begin_col[i + 1], end_col[i + 1], state_col[i + 1]},
                          {begin_col[i], end_col[i], state_col[i]})) {
      throw TraceFormatError("chunk columns not sorted by (begin, end, state)" +
                             offset_str);
    }
  }
  if (seen_min_end != min_end || seen_max_end != max_end) {
    throw TraceFormatError("chunk fences disagree with columns" + offset_str);
  }
  auto payload = std::make_shared<const MappedChunkPayload>(
      region, begin_col, end_col, state_col);
  return {static_cast<ResourceId>(ur),
          std::make_shared<const TraceChunk>(std::move(payload), min_end,
                                             max_end),
          record_bytes};
}

/// Validates and maps one *v2* chunk record: bounds and codec tags first,
/// then the section checksum, then a full streaming decode re-deriving
/// sort order, state range and all three fences (a compressed section is
/// only trusted after every varint/dictionary/run in it decoded cleanly).
/// All-raw records come back as zero-copy mapped columns; anything else
/// as a compressed chunk streaming from the mapping.
MappedChunkRecord map_chunk_record_v2(
    const std::shared_ptr<const MappedRegion>& region, std::size_t pos,
    std::uint64_t region_file_offset, const std::string& path,
    std::uint64_t state_count) {
  const std::uint64_t file_offset = region_file_offset + pos;
  const auto offset_str = " in '" + path + "' at offset " +
                          std::to_string(file_offset);
  const std::uint8_t* base = region->data();
  const std::size_t avail = region->size();
  if (pos + kChunkHeaderBytes > avail) {
    throw TraceFormatError("truncated chunk header" + offset_str);
  }
  std::uint32_t ur = 0;
  std::uint64_t count = 0;
  TimeNs min_begin = 0;
  TimeNs min_end = 0;
  TimeNs max_end = 0;
  std::uint64_t begin_bytes = 0;
  std::uint64_t end_bytes = 0;
  std::uint64_t state_bytes = 0;
  std::uint64_t checksum = 0;
  std::memcpy(&ur, base + pos, 4);
  const std::uint8_t begin_tag = base[pos + 4];
  const std::uint8_t end_tag = base[pos + 5];
  const std::uint8_t state_tag = base[pos + 6];
  const std::uint8_t flags = base[pos + 7];
  std::memcpy(&count, base + pos + 8, 8);
  std::memcpy(&min_begin, base + pos + 16, 8);
  std::memcpy(&min_end, base + pos + 24, 8);
  std::memcpy(&max_end, base + pos + 32, 8);
  std::memcpy(&begin_bytes, base + pos + 40, 8);
  std::memcpy(&end_bytes, base + pos + 48, 8);
  std::memcpy(&state_bytes, base + pos + 56, 8);
  std::memcpy(&checksum, base + pos + 64, 8);
  if (count == 0) {
    throw TraceFormatError("empty chunk record" + offset_str);
  }
  if (flags != 0) {
    throw TraceFormatError("unknown chunk record flags " +
                           std::to_string(flags) + offset_str);
  }
  if (!time_codec_valid(begin_tag) || !time_codec_valid(end_tag) ||
      !state_codec_valid(state_tag) ||
      static_cast<TimeCodec>(end_tag) == TimeCodec::kGapFromPrevEnd) {
    throw TraceFormatError("invalid chunk codec tags" + offset_str);
  }
  // Guard the size arithmetic: each section must fit the remaining bytes
  // on its own before the padded sum is formed (a huge size must read as
  // truncation, not wrap into a small record).
  const std::uint64_t remaining = avail - pos;
  if (begin_bytes > remaining || end_bytes > remaining ||
      state_bytes > remaining) {
    throw TraceFormatError("truncated chunk payload" + offset_str +
                           " (section sizes exceed the file)");
  }
  const std::uint64_t record_bytes =
      chunk_record_bytes_v2(begin_bytes, end_bytes, state_bytes);
  if (record_bytes > remaining) {
    throw TraceFormatError("truncated chunk payload" + offset_str);
  }
  const std::size_t sec0 = pos + kChunkHeaderBytes;
  const std::size_t sec1 = sec0 + static_cast<std::size_t>(pad8(begin_bytes));
  const std::size_t sec2 = sec1 + static_cast<std::size_t>(pad8(end_bytes));
  ColumnsCoding coding;
  coding.count = count;
  coding.begin_codec = static_cast<TimeCodec>(begin_tag);
  coding.end_codec = static_cast<TimeCodec>(end_tag);
  coding.state_codec = static_cast<StateCodec>(state_tag);
  coding.begin_section = {base + sec0,
                          static_cast<std::size_t>(begin_bytes)};
  coding.end_section = {base + sec1, static_cast<std::size_t>(end_bytes)};
  coding.state_section = {base + sec2,
                          static_cast<std::size_t>(state_bytes)};
  std::uint64_t computed = kFnvOffsetBasis;
  computed = fnv1a(coding.begin_section.data(), coding.begin_section.size(),
                   computed);
  computed =
      fnv1a(coding.end_section.data(), coding.end_section.size(), computed);
  computed = fnv1a(coding.state_section.data(), coding.state_section.size(),
                   computed);
  if (computed != checksum) {
    throw TraceFormatError(
        "chunk checksum mismatch" + offset_str + " (stored " +
        std::to_string(checksum) + ", computed " + std::to_string(computed) +
        ")");
  }
  // Full streaming decode: every interval of the record is re-derived and
  // checked against the header's fences before the record is trusted.
  // The decoder's own malformed-stream errors carry no file context, so
  // its calls are wrapped to append the record offset.
  std::optional<ColumnsDecoder> decoder;
  try {
    decoder.emplace(coding);
  } catch (const Error& e) {
    throw TraceFormatError(std::string(e.what()) + offset_str);
  }
  const auto decode_next = [&](StateInterval& s) {
    try {
      return decoder->next(s);
    } catch (const Error& e) {
      throw TraceFormatError(std::string(e.what()) + offset_str);
    }
  };
  StateInterval first{};
  StateInterval last{};
  TimeNs seen_min_end = 0;
  TimeNs seen_max_end = 0;
  StateInterval s{};
  StateInterval prev{};
  std::uint64_t decoded = 0;
  while (decode_next(s)) {
    if (s.end < s.begin) {
      throw TraceFormatError("chunk interval with end < begin" + offset_str);
    }
    if (s.state < 0 || static_cast<std::uint64_t>(s.state) >= state_count) {
      throw TraceFormatError("chunk interval references unknown state " +
                             std::to_string(s.state) + offset_str);
    }
    if (decoded == 0) {
      first = s;
      seen_min_end = s.end;
      seen_max_end = s.end;
    } else {
      if (interval_key_less(s, prev)) {
        throw TraceFormatError(
            "chunk columns not sorted by (begin, end, state)" + offset_str);
      }
      seen_min_end = std::min(seen_min_end, s.end);
      seen_max_end = std::max(seen_max_end, s.end);
    }
    prev = s;
    ++decoded;
  }
  last = prev;
  if (first.begin != min_begin || seen_min_end != min_end ||
      seen_max_end != max_end) {
    throw TraceFormatError("chunk fences disagree with columns" + offset_str);
  }

  TraceChunkPtr chunk;
  if (coding.begin_codec == TimeCodec::kRaw &&
      coding.end_codec == TimeCodec::kRaw &&
      coding.state_codec == StateCodec::kRaw) {
    // All-raw: the sections are the columns — serve them in place.
    const auto n = static_cast<std::size_t>(count);
    const std::span<const TimeNs> begin_col(
        reinterpret_cast<const TimeNs*>(base + sec0), n);
    const std::span<const TimeNs> end_col(
        reinterpret_cast<const TimeNs*>(base + sec1), n);
    const std::span<const StateId> state_col(
        reinterpret_cast<const StateId*>(base + sec2), n);
    auto payload = std::make_shared<const MappedChunkPayload>(
        region, begin_col, end_col, state_col);
    chunk = std::make_shared<const TraceChunk>(std::move(payload), min_end,
                                               max_end);
  } else {
    auto payload =
        std::make_shared<const CompressedChunkPayload>(region, coding);
    chunk = std::make_shared<const TraceChunk>(std::move(payload), first,
                                               last, min_end, max_end);
  }
  return {static_cast<ResourceId>(ur), std::move(chunk),
          static_cast<std::size_t>(record_bytes)};
}

/// Bounds-checked little reader over a mapped chunk file.
struct MapCursor {
  const std::uint8_t* base;
  std::size_t size;
  std::size_t pos = 0;
  const std::string& path;

  void need(std::size_t n, const char* what) const {
    if (pos + n > size) {
      throw TraceFormatError("truncated " + std::string(what) + " in '" +
                             path + "' at offset " + std::to_string(pos));
    }
  }
  template <typename T>
  T pod(const char* what) {
    T v{};
    need(sizeof v, what);
    std::memcpy(&v, base + pos, sizeof v);
    pos += sizeof v;
    return v;
  }
  std::string string(const char* what) {
    const auto len = pod<std::uint32_t>(what);
    if (len > (1u << 20)) {
      throw TraceFormatError("string too long in '" + path + "' at offset " +
                             std::to_string(pos));
    }
    need(len, what);
    std::string s(reinterpret_cast<const char*>(base + pos), len);
    pos += len;
    return s;
  }
  void align8() { pos = (pos + 7) & ~std::size_t{7}; }
};

}  // namespace

std::uint64_t write_binary_trace(Trace& trace, const std::string& path) {
  trace.seal();
  FilePtr f = open_file(path, "wb");

  write_bytes(f.get(), kMagic, sizeof kMagic, path);
  write_pod<std::uint64_t>(f.get(), trace.resource_count(), path);
  write_pod<std::uint64_t>(f.get(), trace.states().size(), path);
  write_pod<TimeNs>(f.get(), trace.begin(), path);
  write_pod<TimeNs>(f.get(), trace.end(), path);
  write_pod<std::uint64_t>(f.get(), trace.state_count(), path);
  for (const auto& p : trace.resource_paths()) write_string(f.get(), p, path);
  for (const auto& s : trace.states().names()) write_string(f.get(), s, path);

  // Buffered record emission, resource-major (file order is deterministic).
  constexpr std::size_t kBufRecords = 1 << 15;
  std::vector<std::uint8_t> buf(kBufRecords * kRecordBytes);
  std::size_t in_buf = 0;
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    for (const auto& s : trace.intervals(r)) {
      encode_record(buf.data() + in_buf * kRecordBytes, r, s);
      if (++in_buf == kBufRecords) {
        write_bytes(f.get(), buf.data(), in_buf * kRecordBytes, path);
        in_buf = 0;
      }
    }
  }
  if (in_buf != 0) {
    write_bytes(f.get(), buf.data(), in_buf * kRecordBytes, path);
  }
  const long pos = std::ftell(f.get());
  if (pos < 0) throw IoError("ftell failed on '" + path + "'");
  return static_cast<std::uint64_t>(pos);
}

TraceFileInfo read_binary_trace_info(const std::string& path) {
  FilePtr f = open_file(path, "rb");
  return read_header(f.get(), path);
}

TraceFileInfo stream_binary_trace(
    const std::string& path,
    const std::function<void(std::span<const TraceRecord>)>& sink,
    std::size_t chunk_records) {
  FilePtr f = open_file(path, "rb");
  TraceFileInfo info = read_header(f.get(), path);
  const long records_base = std::ftell(f.get());

  std::vector<std::uint8_t> buf(chunk_records * kRecordBytes);
  std::vector<TraceRecord> records;
  records.reserve(chunk_records);

  // The record section streams through the resumable byte-range decoder
  // (validation — id ranges, end >= begin, absolute error offsets — lives
  // there, shared with the pipeline's parallel shard decode).
  StgtRecordDecoder decoder(info.resource_paths.size(), info.states.size(),
                            path,
                            static_cast<std::uint64_t>(records_base));
  const StgtRecordSink record_sink = [&records](const StgtRecord& rec) {
    records.push_back(rec);
  };
  std::uint64_t remaining = info.record_count;
  while (remaining > 0) {
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, chunk_records));
    read_bytes(f.get(), buf.data(), take * kRecordBytes, path);
    records.clear();
    decoder.feed({buf.data(), take * kRecordBytes}, record_sink);
    sink({records.data(), records.size()});
    remaining -= take;
  }
  decoder.finish();
  return info;
}

std::uint64_t write_chunk_file(TraceStore& store, const std::string& path) {
  store.seal_chunk();
  // Write to a sibling temp file and rename over the target: the store's
  // own chunks may be mmapped views of `path` (a reopened chunk file, or
  // a spill file the caller reuses), and fopen("wb") would truncate the
  // pages they read mid-write — SIGBUS plus data loss.  The rename also
  // makes the write atomic for concurrent openers.
  const std::string tmp = path + ".tmp";
  FilePtr f = open_file(tmp, "wb");
  std::uint64_t chunk_count = 0;
  for (ResourceId r = 0; r < static_cast<ResourceId>(store.resource_count());
       ++r) {
    chunk_count += store.chunks(r).size();
  }
  write_bytes(f.get(), kChunkMagic, sizeof kChunkMagic, tmp);
  write_pod<std::uint64_t>(f.get(), store.resource_count(), tmp);
  write_pod<std::uint64_t>(f.get(), store.states().size(), tmp);
  write_pod<TimeNs>(f.get(), store.begin(), tmp);
  write_pod<TimeNs>(f.get(), store.end(), tmp);
  write_pod<std::uint64_t>(f.get(), chunk_count, tmp);
  for (const auto& p : store.resource_paths()) write_string(f.get(), p, tmp);
  for (const auto& s : store.states().names()) write_string(f.get(), s, tmp);
  const long table_end = std::ftell(f.get());
  if (table_end < 0) throw IoError("ftell failed on '" + tmp + "'");
  const std::uint8_t zeros[8] = {};
  const auto pad = static_cast<std::size_t>((8 - table_end % 8) % 8);
  if (pad != 0) write_bytes(f.get(), zeros, pad, tmp);
  for (ResourceId r = 0; r < static_cast<ResourceId>(store.resource_count());
       ++r) {
    for (const TraceChunkPtr& chunk : store.chunks(r)) {
      write_chunk_record(f.get(), tmp, r, *chunk);
    }
  }
  if (std::fflush(f.get()) != 0) {
    throw IoError("flush failed on '" + tmp + "'");
  }
  const long pos = std::ftell(f.get());
  if (pos < 0) throw IoError("ftell failed on '" + tmp + "'");
  f.reset();  // close before the rename
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return static_cast<std::uint64_t>(pos);
}

std::shared_ptr<TraceStore> open_chunk_file_store(const std::string& path) {
  const auto region = MappedRegion::map_file(path);
  MapCursor cur{region->data(), region->size(), 0, path};
  cur.need(sizeof kChunkMagic, "chunk file magic");
  int version = 0;
  if (std::memcmp(cur.base, kChunkMagic, sizeof kChunkMagic) == 0) {
    version = 2;
  } else if (std::memcmp(cur.base, kChunkMagicV1, sizeof kChunkMagicV1) ==
             0) {
    version = 1;
  } else {
    throw TraceFormatError("bad chunk file magic in '" + path + "'");
  }
  cur.pos += sizeof kChunkMagic;
  const auto resource_count = cur.pod<std::uint64_t>("header");
  const auto state_count = cur.pod<std::uint64_t>("header");
  const auto window_begin = cur.pod<TimeNs>("header");
  const auto window_end = cur.pod<TimeNs>("header");
  const auto chunk_count = cur.pod<std::uint64_t>("header");
  if (resource_count > (1ull << 32) || state_count > (1ull << 20)) {
    throw TraceFormatError("implausible table sizes in '" + path + "'");
  }
  if (window_end < window_begin) {
    throw TraceFormatError("chunk file window end < begin in '" + path + "'");
  }
  auto store = std::make_shared<TraceStore>();
  // add_resource/intern deduplicate by name; a duplicate table entry in a
  // corrupt file would silently shift every later id, so reject it.
  for (std::uint64_t i = 0; i < resource_count; ++i) {
    const std::size_t at = cur.pos;
    if (static_cast<std::uint64_t>(
            store->add_resource(cur.string("resource table"))) != i) {
      throw TraceFormatError("duplicate resource path in '" + path +
                             "' at offset " + std::to_string(at));
    }
  }
  for (std::uint64_t i = 0; i < state_count; ++i) {
    const std::size_t at = cur.pos;
    if (static_cast<std::uint64_t>(
            store->states().intern(cur.string("state table"))) != i) {
      throw TraceFormatError("duplicate state name in '" + path +
                             "' at offset " + std::to_string(at));
    }
  }
  cur.align8();
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    MappedChunkRecord rec =
        version == 2
            ? map_chunk_record_v2(region, cur.pos, 0, path, state_count)
            : map_chunk_record_v1(region, cur.pos, 0, path, state_count);
    if (rec.resource < 0 ||
        static_cast<std::uint64_t>(rec.resource) >= resource_count) {
      throw TraceFormatError("chunk record references unknown resource in '" +
                             path + "' at offset " + std::to_string(cur.pos));
    }
    store->adopt_chunk(rec.resource, std::move(rec.chunk));
    cur.pos += rec.record_bytes;
  }
  store->set_window(window_begin, window_end);
  store->seal_chunk();
  return store;
}

bool is_chunk_file(const std::string& path) {
  FilePtr f = open_file(path, "rb");
  char magic[8];
  if (std::fread(magic, 1, sizeof magic, f.get()) != sizeof magic) {
    return false;
  }
  return std::memcmp(magic, kChunkMagic, sizeof kChunkMagic) == 0 ||
         std::memcmp(magic, kChunkMagicV1, sizeof kChunkMagicV1) == 0;
}

SpilledChunkRecord spill_chunk_to_file(const std::string& path,
                                       ResourceId resource,
                                       const TraceChunk& chunk,
                                       std::uint64_t state_count) {
  std::uint64_t offset = 0;
  {
    // "a+" so a pre-existing file's magic can be read back: appending to
    // a file that is not a spill file would corrupt it, and appending at
    // a non-8-aligned offset would break the in-place column alignment
    // every mapped read relies on.
    FilePtr f = open_file(path, "a+b");
    if (std::fseek(f.get(), 0, SEEK_END) != 0) {
      throw IoError("seek failed on spill file '" + path + "'");
    }
    long end = std::ftell(f.get());
    if (end < 0) throw IoError("ftell failed on spill file '" + path + "'");
    if (end == 0) {
      write_bytes(f.get(), kSpillMagic, sizeof kSpillMagic, path);
      end = sizeof kSpillMagic;
    } else {
      char magic[8];
      if (std::fseek(f.get(), 0, SEEK_SET) != 0 ||
          std::fread(magic, 1, sizeof magic, f.get()) != sizeof magic ||
          std::memcmp(magic, kSpillMagic, sizeof kSpillMagic) != 0 ||
          end % 8 != 0) {
        throw IoError("'" + path +
                      "' exists but is not a spill file (refusing to append)");
      }
      if (std::fseek(f.get(), 0, SEEK_END) != 0) {
        throw IoError("seek failed on spill file '" + path + "'");
      }
    }
    offset = static_cast<std::uint64_t>(end);
    write_chunk_record(f.get(), path, resource, chunk);
    if (std::fflush(f.get()) != 0) {
      throw IoError("flush failed on spill file '" + path + "'");
    }
  }
  // Map the freshly appended record back and re-validate it through the
  // same path an open uses: a torn or short write surfaces here, loudly,
  // not as a corrupt stream later.
  const ChunkSections sec = chunk_sections(chunk);
  const std::uint64_t record_bytes = chunk_record_bytes_v2(
      sec.begin.size(), sec.end.size(), sec.state.size());
  const auto region = MappedRegion::map(
      path, offset, static_cast<std::size_t>(record_bytes));
  return {map_chunk_record_v2(region, 0, offset, path, state_count).chunk,
          record_bytes};
}

std::shared_ptr<TraceStore> read_binary_trace_store(const std::string& path,
                                                    std::size_t chunk_records) {
  // Chunk files open zero-copy: mapped columns are served in place instead
  // of being rehydrated through the record tails.
  if (is_chunk_file(path)) return open_chunk_file_store(path);
  const TraceFileInfo info = read_binary_trace_info(path);
  auto store = std::make_shared<TraceStore>();
  for (const auto& p : info.resource_paths) store->add_resource(p);
  for (const auto& s : info.states.names()) store->states().intern(s);
  std::uint64_t staged = 0;
  stream_binary_trace(
      path,
      [&](std::span<const TraceRecord> chunk) {
        for (const auto& rec : chunk) {
          store->add_state(rec.resource, rec.interval.state,
                           rec.interval.begin, rec.interval.end);
        }
        staged += chunk.size();
        if (staged >= chunk_records) {
          store->seal_chunk();
          staged = 0;
        }
      },
      chunk_records);
  store->set_window(info.window_begin, info.window_end);
  store->seal_chunk();
  return store;
}

Trace read_binary_trace(const std::string& path) {
  // Chunk files come back as a facade over the zero-copy mapped store.
  if (is_chunk_file(path)) return Trace(open_chunk_file_store(path));
  // Register tables before records: decode the header once, then stream the
  // records into the trace (ids in the file are dense and file-ordered, so
  // they coincide with the registration order).
  const TraceFileInfo info = read_binary_trace_info(path);
  Trace out;
  for (const auto& p : info.resource_paths) out.add_resource(p);
  for (const auto& s : info.states.names()) out.states().intern(s);
  stream_binary_trace(
      path,
      [&](std::span<const TraceRecord> chunk) {
        for (const auto& rec : chunk) {
          out.add_state(rec.resource, rec.interval.state, rec.interval.begin,
                        rec.interval.end);
        }
      },
      /*chunk_records=*/1 << 16);
  out.set_window(info.window_begin, info.window_end);
  out.seal();
  return out;
}

}  // namespace stagg
