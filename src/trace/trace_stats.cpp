#include "trace/trace_stats.hpp"

#include <algorithm>
#include <sstream>

#include "common/string_util.hpp"

namespace stagg {

TraceStats compute_stats(Trace& trace) {
  trace.seal();
  TraceStats st;
  st.resource_count = trace.resource_count();
  st.window_begin = trace.begin();
  st.window_end = trace.end();

  const std::size_t n_states = trace.states().size();
  std::vector<std::uint64_t> occurrences(n_states, 0);
  std::vector<TimeNs> durations(n_states, 0);

  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    for (const auto& s : trace.intervals(r)) {
      ++st.state_count;
      st.busy_time += s.duration();
      occurrences[static_cast<std::size_t>(s.state)]++;
      durations[static_cast<std::size_t>(s.state)] += s.duration();
    }
  }
  st.event_count = 2 * st.state_count;
  st.mean_states_per_resource =
      st.resource_count
          ? static_cast<double>(st.state_count) /
                static_cast<double>(st.resource_count)
          : 0.0;

  st.per_state.reserve(n_states);
  for (std::size_t x = 0; x < n_states; ++x) {
    StateSummary s;
    s.state = static_cast<StateId>(x);
    s.name = trace.states().name(s.state);
    s.occurrences = occurrences[x];
    s.total_duration = durations[x];
    s.fraction_of_busy_time =
        st.busy_time > 0
            ? static_cast<double>(durations[x]) /
                  static_cast<double>(st.busy_time)
            : 0.0;
    st.per_state.push_back(std::move(s));
  }
  std::sort(st.per_state.begin(), st.per_state.end(),
            [](const StateSummary& a, const StateSummary& b) {
              return a.total_duration > b.total_duration;
            });
  return st;
}

std::vector<std::vector<double>> state_duration_vectors(const Trace& trace) {
  const std::size_t n_states = trace.states().size();
  std::vector<std::vector<double>> out(trace.resource_count(),
                                       std::vector<double>(n_states, 0.0));
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    auto& vec = out[static_cast<std::size_t>(r)];
    for (const auto& s : trace.intervals(r)) {
      vec[static_cast<std::size_t>(s.state)] += to_seconds(s.duration());
    }
  }
  return out;
}

std::string format_stats(const TraceStats& st) {
  std::ostringstream os;
  os << "resources:  " << st.resource_count << '\n'
     << "states:     " << with_thousands(static_cast<long long>(st.state_count))
     << " (" << with_thousands(static_cast<long long>(st.event_count))
     << " events)\n"
     << "window:     [" << to_seconds(st.window_begin) << "s, "
     << to_seconds(st.window_end) << "s)\n"
     << "busy time:  " << to_seconds(st.busy_time) << "s\n";
  os << "top states:\n";
  const std::size_t top = std::min<std::size_t>(st.per_state.size(), 8);
  for (std::size_t i = 0; i < top; ++i) {
    const auto& s = st.per_state[i];
    os << "  " << s.name << ": "
       << with_thousands(static_cast<long long>(s.occurrences)) << " x, "
       << to_seconds(s.total_duration) << "s ("
       << static_cast<int>(s.fraction_of_busy_time * 100.0) << "%)\n";
  }
  return os.str();
}

}  // namespace stagg
