#include "trace/stream_decode.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace stagg {
namespace {

/// Largest |seconds| whose nanosecond count fits in TimeNs (int64):
/// 2^63 ns ≈ 9.223e9 s; stay just inside so llround cannot overflow.
constexpr double kMaxAbsSeconds = 9.2e9;

/// Seconds (pj_dump) to nanoseconds, with round-to-nearest so that
/// begin + duration == end survives the conversion.  Non-finite values and
/// magnitudes whose nanosecond count would overflow the 64-bit TimeNs make
/// llround undefined behaviour — reject them with the line context instead.
TimeNs paje_time(double seconds_value, const std::string& where) {
  // Negated form so NaN (every comparison false) is rejected too.
  if (!(std::abs(seconds_value) <= kMaxAbsSeconds)) {
    char num[32];
    std::snprintf(num, sizeof num, "%g", seconds_value);
    throw TraceFormatError(std::string("timestamp ") + num +
                           " s is not representable in nanoseconds (finite, "
                           "|t| <= 9.2e9 s required) at " + where);
  }
  return static_cast<TimeNs>(std::llround(seconds_value * 1e9));
}

}  // namespace

TextTraceDecoder::TextTraceDecoder(TextTraceFormat format, std::string context)
    : format_(format), context_(std::move(context)) {}

void TextTraceDecoder::feed(std::string_view bytes,
                            const DecodedTextSink& sink) {
  while (!bytes.empty()) {
    const std::size_t nl = bytes.find('\n');
    if (nl == std::string_view::npos) {
      carry_.append(bytes);
      return;
    }
    if (carry_.empty()) {
      decode_line(bytes.substr(0, nl), sink);
    } else {
      carry_.append(bytes.substr(0, nl));
      decode_line(carry_, sink);
      carry_.clear();
    }
    bytes.remove_prefix(nl + 1);
  }
}

void TextTraceDecoder::finish(const DecodedTextSink& sink) {
  if (carry_.empty()) return;
  // Move first: decode_line may throw, and finish must stay idempotent.
  const std::string last = std::exchange(carry_, {});
  decode_line(last, sink);
}

void TextTraceDecoder::decode_line(std::string_view line,
                                   const DecodedTextSink& sink) {
  ++line_no_;
  const std::string_view sv = trim(line);
  if (format_ == TextTraceFormat::kCsv) {
    if (sv.empty()) return;
    if (sv.front() == '#') {
      ++stats_.comment_lines;
      if (starts_with(sv, "# window,")) {
        const auto fields = split(sv.substr(2), ',');
        if (fields.size() != 3) {
          throw TraceFormatError("bad window comment at " + context_ + ":" +
                                 std::to_string(line_no_));
        }
        window_begin_ = parse_int(fields[1], context_);
        window_end_ = parse_int(fields[2], context_);
        has_window_ = true;
      }
      return;
    }
    const auto fields = split(sv, ',');
    const std::string where = context_ + ":" + std::to_string(line_no_);
    if (fields.size() != 5 || fields[0] != "STATE") {
      throw TraceFormatError("expected STATE record with 5 fields at " +
                             where);
    }
    DecodedTextRecord rec;
    rec.resource = fields[1];
    rec.state = fields[2];
    rec.begin = parse_int(fields[3], where);
    rec.end = parse_int(fields[4], where);
    if (rec.end < rec.begin) {
      throw TraceFormatError("end < begin at " + where);
    }
    ++stats_.records;
    sink(rec);
    return;
  }
  // pj_dump (blank lines count as comments, like the historical reader).
  if (sv.empty() || sv.front() == '#' || sv.front() == '%') {
    ++stats_.comment_lines;
    return;
  }
  const auto fields = split(sv, ',');
  const std::string_view kind = trim(fields[0]);
  if (kind != "State") {
    ++stats_.skipped_records;
    return;
  }
  const std::string where = context_ + ":" + std::to_string(line_no_);
  if (fields.size() != 8) {
    // More than 8 fields is ambiguous between unsupported extra pj_dump
    // columns and a comma embedded in a container/state name (the format
    // has no escaping, so such a name shifts every later field); both
    // would silently mis-assign fields, so reject with the line context.
    throw TraceFormatError(
        "State record needs exactly 8 fields, got " +
        std::to_string(fields.size()) + " at " + where +
        (fields.size() > 8 ? " (extra trailing fields are not supported, "
                             "and names must not contain commas)"
                           : ""));
  }
  const double begin_s = parse_double(fields[3], where);
  const double end_s = parse_double(fields[4], where);
  if (end_s < begin_s) {
    throw TraceFormatError("State with end < begin at " + where);
  }
  DecodedTextRecord rec;
  rec.resource = trim(fields[1]);
  rec.state = trim(fields[7]);
  rec.begin = paje_time(begin_s, where);
  rec.end = paje_time(end_s, where);
  ++stats_.records;
  sink(rec);
}

std::vector<std::string_view> split_text_shards(std::string_view text,
                                                std::size_t shards) {
  std::vector<std::string_view> out;
  if (text.empty() || shards == 0) return out;
  const std::size_t target = std::max<std::size_t>(1, text.size() / shards);
  std::size_t begin = 0;
  while (begin < text.size() && out.size() + 1 < shards) {
    std::size_t end = begin + target;
    if (end >= text.size()) break;
    const std::size_t nl = text.find('\n', end);
    if (nl == std::string_view::npos) break;
    out.push_back(text.substr(begin, nl + 1 - begin));
    begin = nl + 1;
  }
  if (begin < text.size()) out.push_back(text.substr(begin));
  return out;
}

StgtRecordDecoder::StgtRecordDecoder(std::uint64_t resource_count,
                                     std::uint64_t state_count,
                                     std::string context,
                                     std::uint64_t base_offset)
    : resource_count_(resource_count),
      state_count_(state_count),
      context_(std::move(context)),
      base_offset_(base_offset) {}

void StgtRecordDecoder::emit(const std::uint8_t* record,
                             const StgtRecordSink& sink) {
  std::uint32_t ur = 0, ux = 0;
  TimeNs begin = 0, end = 0;
  std::memcpy(&ur, record, 4);
  std::memcpy(&ux, record + 4, 4);
  std::memcpy(&begin, record + 8, 8);
  std::memcpy(&end, record + 16, 8);
  // Built only on the throw paths: the happy path of a 10^8-record ingest
  // must not allocate per record.
  const auto offset_str = [&] {
    return " in '" + context_ + "' at offset " +
           std::to_string(base_offset_ + decoded_ * kRecordBytes);
  };
  if (ur >= resource_count_) {
    throw TraceFormatError("record references unknown resource" +
                           offset_str());
  }
  if (ux >= state_count_) {
    throw TraceFormatError("record references unknown state" + offset_str());
  }
  if (end < begin) {
    throw TraceFormatError("record with end < begin" + offset_str());
  }
  const StgtRecord rec{static_cast<ResourceId>(ur),
                       StateInterval{begin, end, static_cast<StateId>(ux)}};
  sink(rec);
  ++decoded_;
}

void StgtRecordDecoder::feed(std::span<const std::uint8_t> bytes,
                             const StgtRecordSink& sink) {
  if (carry_len_ > 0) {
    const std::size_t need =
        std::min(kRecordBytes - carry_len_, bytes.size());
    std::memcpy(carry_ + carry_len_, bytes.data(), need);
    carry_len_ += need;
    bytes = bytes.subspan(need);
    if (carry_len_ < kRecordBytes) return;
    carry_len_ = 0;
    emit(carry_, sink);
  }
  while (bytes.size() >= kRecordBytes) {
    emit(bytes.data(), sink);
    bytes = bytes.subspan(kRecordBytes);
  }
  if (!bytes.empty()) {
    std::memcpy(carry_, bytes.data(), bytes.size());
    carry_len_ = bytes.size();
  }
}

void StgtRecordDecoder::finish() const {
  if (carry_len_ != 0) {
    throw TraceFormatError(
        "truncated record stream in '" + context_ + "' at offset " +
        std::to_string(base_offset_ + decoded_ * kRecordBytes) + " (" +
        std::to_string(carry_len_) + " trailing bytes)");
  }
}

}  // namespace stagg
