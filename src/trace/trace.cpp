#include "trace/trace.hpp"

#include "common/string_util.hpp"

namespace stagg {

std::span<const StateInterval> Trace::intervals(ResourceId r) const {
  if (row_resource_ != r || row_generation_ != store_->generation()) {
    store_->materialize(r, row_);
    row_resource_ = r;
    row_generation_ = store_->generation();
  }
  return {row_.data(), row_.size()};
}

void require_delimiter_safe_names(const Trace& trace,
                                  std::string_view path_kind) {
  for (StateId x = 0; x < static_cast<StateId>(trace.states().size()); ++x) {
    require_field_safe(trace.states().name(x), "state name");
  }
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    require_field_safe(trace.resource_path(r), path_kind);
  }
}

}  // namespace stagg
