#include "trace/trace.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "common/thread_pool.hpp"

namespace stagg {

ResourceId Trace::add_resource(std::string_view path) {
  if (const auto it = resource_ids_.find(std::string(path));
      it != resource_ids_.end()) {
    return it->second;
  }
  const ResourceId id = static_cast<ResourceId>(resource_paths_.size());
  resource_paths_.emplace_back(path);
  resource_ids_.emplace(resource_paths_.back(), id);
  per_resource_.emplace_back();
  sorted_prefix_.push_back(0);
  return id;
}

ResourceId Trace::find_resource(std::string_view path) const {
  const auto it = resource_ids_.find(std::string(path));
  return it == resource_ids_.end() ? ResourceId{-1} : it->second;
}

void Trace::add_state(ResourceId resource, StateId state, TimeNs begin,
                      TimeNs end) {
  if (resource < 0 ||
      static_cast<std::size_t>(resource) >= resource_paths_.size()) {
    throw InvalidArgument("add_state: unknown resource id " +
                          std::to_string(resource));
  }
  if (state < 0 || static_cast<std::size_t>(state) >= states_.size()) {
    throw InvalidArgument("add_state: unknown state id " +
                          std::to_string(state));
  }
  if (end < begin) {
    throw InvalidArgument("add_state: end < begin");
  }
  per_resource_[static_cast<std::size_t>(resource)].push_back(
      StateInterval{begin, end, state});
  sealed_ = false;
}

void Trace::add_state(ResourceId resource, std::string_view state_name,
                      TimeNs begin, TimeNs end) {
  add_state(resource, states_.intern(state_name), begin, end);
}

void Trace::seal() {
  if (sealed_) return;
  parallel_for(per_resource_.size(), [this](std::size_t r) {
    auto& v = per_resource_[r];
    const std::size_t sorted = sorted_prefix_[r];
    if (sorted >= v.size()) return;  // nothing appended since last seal
    const auto cmp = [](const StateInterval& a, const StateInterval& b) {
      if (a.begin != b.begin) return a.begin < b.begin;
      return a.end < b.end;
    };
    const auto mid = v.begin() + static_cast<std::ptrdiff_t>(sorted);
    std::sort(mid, v.end(), cmp);
    if (sorted > 0) std::inplace_merge(v.begin(), mid, v.end(), cmp);
    sorted_prefix_[r] = v.size();
  }, /*grain=*/1);
  if (!window_overridden_) {
    TimeNs lo = std::numeric_limits<TimeNs>::max();
    TimeNs hi = std::numeric_limits<TimeNs>::min();
    bool any = false;
    for (const auto& v : per_resource_) {
      for (const auto& s : v) {
        lo = std::min(lo, s.begin);
        hi = std::max(hi, s.end);
        any = true;
      }
    }
    begin_ = any ? lo : 0;
    end_ = any ? hi : 0;
  }
  sealed_ = true;
}

std::uint64_t Trace::state_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& v : per_resource_) n += v.size();
  return n;
}

void Trace::erase_before(TimeNs cutoff) {
  for (std::size_t r = 0; r < per_resource_.size(); ++r) {
    auto& v = per_resource_[r];
    // Manual erase-remove keeps relative order (sortedness and fold order
    // survive) while re-counting how many survivors come from the sorted
    // prefix, so the next seal still merges instead of re-sorting.
    std::size_t write = 0;
    std::size_t sorted_survivors = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i].end <= cutoff) continue;
      if (i < sorted_prefix_[r]) ++sorted_survivors;
      v[write++] = v[i];
    }
    v.resize(write);
    sorted_prefix_[r] = sorted_survivors;
  }
  // An auto-computed observation window may have spanned the erased
  // intervals; unseal so the next seal() re-derives it from the survivors
  // (cheap: the sorted prefixes are intact, only the window scan runs).
  // An overridden window is the caller's contract and stays put.
  if (!window_overridden_) sealed_ = false;
}

void Trace::set_window(TimeNs begin, TimeNs end) {
  if (end < begin) throw InvalidArgument("set_window: end < begin");
  begin_ = begin;
  end_ = end;
  window_overridden_ = true;
}

void require_delimiter_safe_names(const Trace& trace,
                                  std::string_view path_kind) {
  for (StateId x = 0; x < static_cast<StateId>(trace.states().size()); ++x) {
    require_field_safe(trace.states().name(x), "state name");
  }
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    require_field_safe(trace.resource_path(r), path_kind);
  }
}

}  // namespace stagg
