// ShardedTraceStore: S per-shard TraceStores under one routing facade.
//
// Resources are assigned to shards by the hierarchy subtree partition of a
// ShardPlan (a resource whose path names a hierarchy leaf lands on that
// leaf's shard; paths outside the hierarchy hash deterministically), so
// every resource lives in exactly one shard.  The facade keeps a global
// resource table — stable global ResourceIds, a COW path table and a
// path index — and a per-resource (shard, local id) route; state
// registries are mirrored into every shard in global intern order, so
// StateIds are identical in every shard and in the facade.
//
// Write routing preserves the single-writer rule *per shard*: ingest()
// buckets a record batch by shard and appends each bucket from exactly one
// parallel task; seal_chunk(), evict_before(), set_compression() and
// spill_cold() fan out with one task (or one serial call) per shard.
// spill_cold() is where the manager's global memory budget becomes a
// per-shard policy: the budget is split proportionally to each shard's
// resident sealed-chunk bytes (floor division, so the shares never sum
// past the cap) and each shard spills to its own file — the global cap
// holds exactly after every enforcement round.  The last split is kept
// for audit()/test accounting.
//
// Read aggregates (begin/end/tails_sealed/byte accounting) fold over the
// shards; because every shard orders its chunks by the same total key and
// a TraceView merges per-resource sequences independent of chunking, a
// sharded store holding the same interval multiset as a monolithic one is
// bit-identical under every view, fold and DP — at every shard count,
// including S = 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hierarchy/shard_plan.hpp"
#include "trace/stream_decode.hpp"
#include "trace/trace_store.hpp"

namespace stagg {

class ShardedTraceStore {
 public:
  struct Route {
    std::size_t shard;
    ResourceId local;
  };

  /// Empty sharded store: one fresh TraceStore per plan shard.  The
  /// hierarchy must outlive the store and match the plan's.
  ShardedTraceStore(const Hierarchy& hierarchy,
                    std::shared_ptr<const ShardPlan> plan);

  /// Re-shards an existing store: registers every source resource (global
  /// ids keep the source order), mirrors its state registry, and adopts
  /// the source's sealed chunks zero-copy into the owning shards.  The
  /// source must have sealed tails (seal_chunk first).
  ShardedTraceStore(const Hierarchy& hierarchy,
                    std::shared_ptr<const ShardPlan> plan,
                    const TraceStore& source);

  ShardedTraceStore(const ShardedTraceStore&) = delete;
  ShardedTraceStore& operator=(const ShardedTraceStore&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const ShardPlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] const Hierarchy& hierarchy() const noexcept {
    return *hierarchy_;
  }
  [[nodiscard]] const TraceStore& shard(std::size_t k) const {
    return *shards_[k];
  }
  /// Shard k's store handle (sessions and views pin shards with these).
  [[nodiscard]] const std::shared_ptr<TraceStore>& shard_ptr(
      std::size_t k) const {
    return shards_[k];
  }

  [[nodiscard]] Route route(ResourceId global) const {
    return {static_cast<std::size_t>(
                shard_of_[static_cast<std::size_t>(global)]),
            local_of_[static_cast<std::size_t>(global)]};
  }
  [[nodiscard]] std::size_t shard_of(ResourceId global) const {
    return static_cast<std::size_t>(
        shard_of_[static_cast<std::size_t>(global)]);
  }

  // --- Global resource table (same contract as TraceStore) ---------------
  ResourceId add_resource(std::string_view path);
  [[nodiscard]] std::size_t resource_count() const noexcept {
    return resource_paths_->size();
  }
  [[nodiscard]] const std::string& resource_path(ResourceId r) const {
    return (*resource_paths_)[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const std::shared_ptr<std::vector<std::string>>&
  resource_paths_ptr() const noexcept {
    return resource_paths_;
  }
  [[nodiscard]] ResourceId find_resource(std::string_view path) const;

  /// The global state registry (shard 0's; every shard mirrors it).
  [[nodiscard]] const StateRegistry& states() const noexcept {
    return shards_[0]->states();
  }
  /// Registers a state in the facade and every shard; returns the global
  /// (== every shard's local) id.
  StateId intern_state(std::string_view name);

  // --- Write side (routed; single writer per shard) -----------------------
  void add_state(ResourceId global, StateId state, TimeNs begin, TimeNs end);
  /// Bulk append: buckets by shard, then appends each shard's records from
  /// exactly one parallel task (per-shard arrival order preserved).
  void ingest(std::span<const EventRecord> records);
  void seal_chunk();
  void evict_before(TimeNs cutoff);
  void set_compression(ChunkCompression policy);
  [[nodiscard]] ChunkCompression compression() const noexcept {
    return shards_[0]->compression();
  }
  /// Configures per-shard spill files `path` (S == 1) or `path.s<k>`.
  void enable_spill(const std::string& path);
  [[nodiscard]] bool spill_enabled() const noexcept {
    return shards_[0]->spill_enabled();
  }
  /// Splits `budget_bytes` across shards proportionally to their resident
  /// sealed-chunk bytes (floor shares, so the shares sum to <= budget) and
  /// spills each shard to its share.  Returns chunks spilled.
  std::size_t spill_cold(std::size_t budget_bytes);
  /// Per-shard budget shares of the last spill_cold round (empty before
  /// the first round) — the split-accounting record audit() checks.
  [[nodiscard]] std::span<const std::size_t> last_spill_split()
      const noexcept {
    return last_split_;
  }
  [[nodiscard]] std::size_t last_spill_budget() const noexcept {
    return last_split_budget_;
  }

  // --- Read aggregates ----------------------------------------------------
  [[nodiscard]] TimeNs begin() const noexcept;
  [[nodiscard]] TimeNs end() const noexcept;
  [[nodiscard]] bool sealed() const noexcept;
  [[nodiscard]] bool tails_sealed() const noexcept;
  [[nodiscard]] TimeNs evict_horizon() const noexcept {
    return shards_[0]->evict_horizon();
  }
  [[nodiscard]] std::uint64_t state_count() const noexcept;
  [[nodiscard]] std::size_t store_bytes() const noexcept;
  [[nodiscard]] std::size_t resident_chunk_bytes() const noexcept;
  [[nodiscard]] std::size_t spilled_chunk_bytes() const noexcept;

  /// Sealed copy sharing all chunks (the from-scratch oracle snapshot:
  /// copies each shard's store — chunk lists share payloads — and seals).
  [[nodiscard]] std::shared_ptr<ShardedTraceStore> snapshot() const;

  /// Router + shard audit: per-shard TraceStore::audit(), every global
  /// resource routed to exactly one shard with matching paths and counts,
  /// registries mirrored, eviction horizons and compression policies
  /// consistent across shards, and the last budget split summing within
  /// its budget.  Throws ContractError on violation.
  void audit() const;

 private:
  ShardedTraceStore(const Hierarchy& hierarchy,
                    std::shared_ptr<const ShardPlan> plan, bool make_stores);

  /// Shard for a new resource: the plan's shard when `path` names a
  /// hierarchy leaf, else a deterministic spread by global id.
  [[nodiscard]] std::size_t route_path(std::string_view path,
                                       ResourceId global) const;

  const Hierarchy* hierarchy_;
  std::shared_ptr<const ShardPlan> plan_;
  std::vector<std::shared_ptr<TraceStore>> shards_;
  std::vector<std::int32_t> shard_of_;
  std::vector<ResourceId> local_of_;
  std::shared_ptr<std::vector<std::string>> resource_paths_ =
      std::make_shared<std::vector<std::string>>();
  std::unordered_map<std::string, ResourceId> resource_ids_;
  std::vector<std::size_t> last_split_;
  std::size_t last_split_budget_ = 0;
};

}  // namespace stagg
