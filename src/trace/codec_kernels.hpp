// Vectorized pre-pass kernels of the columnar codec (compression.cpp).
//
// The encoder's hot loops are pure integer streams: first-order
// differences of sorted time columns, the zigzag sign fold, dictionary
// index resolution, fence min/max scans.  All of them are elementwise or
// order-free, so batching them through the fixed-width wrappers of
// common/simd.hpp is *exact* — integer arithmetic has no rounding, and
// the one reduction here (min/max) is associative and commutative.  The
// encoded byte streams are therefore bit-identical to the scalar
// reference twins in codec::ref below, which the randomized equivalence
// tests (tests/test_simd.cpp) pin at odd sizes and misaligned tails.
//
// What is deliberately NOT here: the FNV-1a block checksum
// (binary_io.cpp).  Its byte-serial multiply-xor chain is the on-disk
// contract — every byte's hash depends on the previous byte's — so it
// cannot be reordered across lanes without changing stored checksums.
// It stays scalar by design.
//
// Raw intrinsics are confined to common/simd.hpp (stagg_lint enforces
// this); everything below is written against the portable wrappers and
// compiles — and runs the tests — in scalar-forced builds too.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "common/simd.hpp"

namespace stagg::codec {

// --- Scalar reference twins ------------------------------------------------
// Structurally independent implementations (plain loops, lower_bound for
// dictionary indices); the equivalence tests compare the kernels below
// against these.

namespace ref {

inline void sub_columns(const std::int64_t* a, const std::int64_t* b,
                        std::size_t n, std::uint64_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint64_t>(a[i]) - static_cast<std::uint64_t>(b[i]);
  }
}

inline void delta_column(const std::int64_t* v, std::size_t n,
                         std::uint64_t* out) noexcept {
  if (n == 0) return;
  out[0] = static_cast<std::uint64_t>(v[0]);
  for (std::size_t i = 1; i < n; ++i) {
    out[i] =
        static_cast<std::uint64_t>(v[i]) - static_cast<std::uint64_t>(v[i - 1]);
  }
}

inline void delta_u64(const std::uint64_t* v, std::size_t n,
                      std::uint64_t* out) noexcept {
  if (n == 0) return;
  out[0] = v[0];
  for (std::size_t i = 1; i < n; ++i) out[i] = v[i] - v[i - 1];
}

inline void zigzag_u64(std::uint64_t* v, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = (v[i] << 1) ^
           static_cast<std::uint64_t>(static_cast<std::int64_t>(v[i]) >> 63);
  }
}

inline bool all_equal_u64(const std::uint64_t* v, std::size_t n) noexcept {
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] != v[0]) return false;
  }
  return true;
}

inline void minmax_i64(const std::int64_t* v, std::size_t n,
                       std::int64_t& lo, std::int64_t& hi) noexcept {
  if (n == 0) return;
  lo = hi = v[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, v[i]);
    hi = std::max(hi, v[i]);
  }
}

inline void dict_indices(const std::int32_t* vals, std::size_t n,
                         const std::int32_t* dict, std::size_t dict_size,
                         std::int32_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::int32_t>(
        std::lower_bound(dict, dict + dict_size, vals[i]) - dict);
  }
}

}  // namespace ref

// --- Vectorized kernels ----------------------------------------------------

/// out[i] = a[i] - b[i] in wrap-around uint64 (duration and gap streams).
inline void sub_columns(const std::int64_t* a, const std::int64_t* b,
                        std::size_t n, std::uint64_t* out) noexcept {
  const auto* au = reinterpret_cast<const std::uint64_t*>(a);
  const auto* bu = reinterpret_cast<const std::uint64_t*>(b);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    (simd::i64x4::load(au + i) - simd::i64x4::load(bu + i)).store(out + i);
  }
  for (; i < n; ++i) out[i] = au[i] - bu[i];
}

/// First-order difference of a (possibly unsorted) int64 column:
/// out[0] = v[0]; out[i] = v[i] - v[i-1].  Each output reads inputs only,
/// so the stream vectorizes despite looking recursive.
inline void delta_column(const std::int64_t* v, std::size_t n,
                         std::uint64_t* out) noexcept {
  if (n == 0) return;
  const auto* vu = reinterpret_cast<const std::uint64_t*>(v);
  out[0] = vu[0];
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    (simd::i64x4::load(vu + i) - simd::i64x4::load(vu + i - 1)).store(out + i);
  }
  for (; i < n; ++i) out[i] = vu[i] - vu[i - 1];
}

/// delta_column over an already-materialized uint64 stream (the
/// second-order pass of delta-of-delta).
inline void delta_u64(const std::uint64_t* v, std::size_t n,
                      std::uint64_t* out) noexcept {
  if (n == 0) return;
  out[0] = v[0];
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    (simd::i64x4::load(v + i) - simd::i64x4::load(v + i - 1)).store(out + i);
  }
  for (; i < n; ++i) out[i] = v[i] - v[i - 1];
}

/// In-place zigzag sign fold: v <- (v << 1) ^ (v >>arith 63).
inline void zigzag_u64(std::uint64_t* v, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const simd::i64x4 x = simd::i64x4::load(v + i);
    (x.shl<1>() ^ x.sign_mask()).store(v + i);
  }
  for (; i < n; ++i) {
    v[i] = (v[i] << 1) ^
           static_cast<std::uint64_t>(static_cast<std::int64_t>(v[i]) >> 63);
  }
}

/// True when every element equals the first (kConst candidate screen).
inline bool all_equal_u64(const std::uint64_t* v, std::size_t n) noexcept {
  if (n <= 1) return true;
  const simd::i64x4 first = simd::i64x4::broadcast(v[0]);
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    if (simd::i64x4::load(v + i).eq_mask(first) != 0xF) return false;
  }
  for (; i < n; ++i) {
    if (v[i] != v[0]) return false;
  }
  return true;
}

/// Signed min and max of an int64 column (chunk fences).  Min/max is
/// associative and commutative, so the 4-lane fold is exact.
inline void minmax_i64(const std::int64_t* v, std::size_t n,
                       std::int64_t& lo, std::int64_t& hi) noexcept {
  if (n == 0) return;
  const auto* vu = reinterpret_cast<const std::uint64_t*>(v);
  std::size_t i = 0;
  std::int64_t slo = v[0];
  std::int64_t shi = v[0];
  if (n >= 4) {
    simd::i64x4 vlo = simd::i64x4::load(vu);
    simd::i64x4 vhi = vlo;
    for (i = 4; i + 4 <= n; i += 4) {
      const simd::i64x4 x = simd::i64x4::load(vu + i);
      vlo = vlo.min_s(x);
      vhi = vhi.max_s(x);
    }
    std::uint64_t lanes_lo[4];
    std::uint64_t lanes_hi[4];
    vlo.store(lanes_lo);
    vhi.store(lanes_hi);
    for (int k = 0; k < 4; ++k) {
      slo = std::min(slo, static_cast<std::int64_t>(lanes_lo[k]));
      shi = std::max(shi, static_cast<std::int64_t>(lanes_hi[k]));
    }
  }
  for (; i < n; ++i) {
    slo = std::min(slo, v[i]);
    shi = std::max(shi, v[i]);
  }
  lo = slo;
  hi = shi;
}

/// Largest dictionary the counting-compare index kernel handles; beyond
/// it a per-value binary search is cheaper than m compares per value.
inline constexpr std::size_t kCountingDictMax = 64;

/// Resolves the dictionary index of every value: dict is sorted,
/// duplicate-free, and contains every value, so the index is the count
/// of dictionary entries strictly below the value.  Small dictionaries
/// (the common case — state palettes) use the branch-free counting
/// compare: 8 values at a time accumulate -gt_mask over the dictionary.
inline void dict_indices(const std::int32_t* vals, std::size_t n,
                         const std::int32_t* dict, std::size_t dict_size,
                         std::int32_t* out) noexcept {
  if (dict_size <= kCountingDictMax) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const simd::i32x8 x = simd::i32x8::load(vals + i);
      simd::i32x8 idx = simd::i32x8::broadcast(0);
      for (std::size_t d = 0; d < dict_size; ++d) {
        idx = idx - x.gt_mask(simd::i32x8::broadcast(dict[d]));
      }
      idx.store(out + i);
    }
    for (; i < n; ++i) {
      std::int32_t idx = 0;
      for (std::size_t d = 0; d < dict_size; ++d) {
        idx += static_cast<std::int32_t>(vals[i] > dict[d]);
      }
      out[i] = idx;
    }
    return;
  }
  ref::dict_indices(vals, n, dict, dict_size, out);
}

}  // namespace stagg::codec
