// In-memory execution trace: per-resource sorted state intervals.
//
// This is the substrate the paper obtains from Score-P/OTF2 dumps; here it
// is produced either by the synthetic workload generators or by the binary /
// CSV readers.  Resources are identified by their hierarchy path so a trace
// can be re-attached to the platform hierarchy it was captured on.
//
// Since the multi-session refactor, Trace is a thin value-semantic facade
// over an immutable chunked TraceStore (trace/trace_store.hpp): appends go
// to the store's mutable tails, seal() seals them into immutable sorted
// chunks, and intervals() lazily materializes the merged row view of one
// resource.  Copying a Trace copies the store *tables and tails* but shares
// the sealed chunks (they are immutable), so a copy is cheap and still
// fully independent.  The store can be lifted out (store()) to back any
// number of zero-copy TraceViews and shared sliding-window sessions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"
#include "trace/state_registry.hpp"
#include "trace/trace_store.hpp"
#include "trace/trace_view.hpp"

namespace stagg {

class Trace;

/// Throws TraceFormatError if any resource path or state name of `trace`
/// contains a comma or line break — the shared write-time precondition of
/// the unquoted comma-separated trace formats (CSV, pj_dump), checked
/// before a single record is emitted.  `path_kind` names the path field
/// in error messages ("resource path" for CSV, "container path" for
/// pj_dump).
void require_delimiter_safe_names(const Trace& trace,
                                  std::string_view path_kind);

/// Mutable in-memory trace.  Intervals may be appended in any order;
/// seal() sorts each resource's appended tail and freezes the observation
/// window.  Facade over a shared TraceStore — see the header comment.
class Trace {
 public:
  Trace() : store_(std::make_shared<TraceStore>()) {}
  /// Adopts an existing store (facade view of a shared substrate).
  explicit Trace(std::shared_ptr<TraceStore> store)
      : store_(std::move(store)) {}

  /// Value semantics: the copy shares the immutable sealed chunks but owns
  /// its tables and tails — mutations never propagate between copies.
  Trace(const Trace& other)
      : store_(std::make_shared<TraceStore>(*other.store_)) {}
  Trace& operator=(const Trace& other) {
    if (this != &other) {
      store_ = std::make_shared<TraceStore>(*other.store_);
      row_resource_ = kInvalidResource;
    }
    return *this;
  }
  Trace(Trace&&) noexcept = default;
  Trace& operator=(Trace&&) noexcept = default;

  /// Registers a resource by hierarchy path; returns its dense id.
  /// Re-registering an existing path returns the existing id.
  ResourceId add_resource(std::string_view path) {
    return store_->add_resource(path);
  }

  /// Number of registered resources.
  [[nodiscard]] std::size_t resource_count() const noexcept {
    return store_->resource_count();
  }

  [[nodiscard]] const std::string& resource_path(ResourceId r) const {
    return store_->resource_path(r);
  }

  [[nodiscard]] const std::vector<std::string>& resource_paths()
      const noexcept {
    return store_->resource_paths();
  }

  /// Finds a resource id by path (kInvalidResource when absent).
  [[nodiscard]] ResourceId find_resource(std::string_view path) const {
    return store_->find_resource(path);
  }

  /// State-name registry (shared across all resources).
  [[nodiscard]] StateRegistry& states() noexcept { return store_->states(); }
  [[nodiscard]] const StateRegistry& states() const noexcept {
    return store_->states();
  }

  /// Appends a state occurrence.  Throws InvalidArgument on end < begin or
  /// unknown resource/state ids.
  void add_state(ResourceId resource, StateId state, TimeNs begin,
                 TimeNs end) {
    store_->add_state(resource, state, begin, end);
  }

  /// Convenience: intern the state name and append.
  void add_state(ResourceId resource, std::string_view state_name,
                 TimeNs begin, TimeNs end) {
    store_->add_state(resource, store_->states().intern(state_name), begin,
                      end);
  }

  /// Sorts appended intervals per resource into a sealed chunk and
  /// computes the observation window.  Idempotent; readers call it
  /// automatically.  Repeated seals of a streaming ingest cost
  /// O(appended log appended) — sealed chunks are never re-sorted.
  void seal() { store_->seal_chunk(); }

  /// Drops every interval ending at or before `cutoff` — intervals that,
  /// by the half-open [begin, end) convention, can never overlap a window
  /// starting at `cutoff`.  Used by sliding sessions to bound retained
  /// memory; sortedness is preserved and an overridden window untouched.
  void erase_before(TimeNs cutoff) { store_->erase_before_exact(cutoff); }

  [[nodiscard]] bool sealed() const noexcept { return store_->sealed(); }

  /// Intervals of one resource (sorted by begin after seal(); intervals
  /// appended since the last seal follow in append order).  Lazily
  /// materializes the merged row from the store's chunks into a single
  /// reusable scratch, so the returned span is valid only until the next
  /// intervals() call on this trace (any resource) or the next mutation
  /// — one row of extra memory, not a second copy of the whole trace.
  /// Being a caching accessor, it is also NOT safe for unsynchronized
  /// concurrent calls on one facade: concurrent readers should each hold
  /// their own Trace copy (cheap: chunks are shared) or read through
  /// TraceViews, which are immutable.
  [[nodiscard]] std::span<const StateInterval> intervals(ResourceId r) const;

  /// Total number of state occurrences.
  [[nodiscard]] std::uint64_t state_count() const noexcept {
    return store_->state_count();
  }

  /// Event count as Table II reports it: one enter + one leave per state.
  [[nodiscard]] std::uint64_t event_count() const noexcept {
    return 2 * state_count();
  }

  /// Observation window [begin, end).  Valid after seal(); an empty trace
  /// reports [0, 0).
  [[nodiscard]] TimeNs begin() const noexcept { return store_->begin(); }
  [[nodiscard]] TimeNs end() const noexcept { return store_->end(); }
  [[nodiscard]] TimeNs span() const noexcept { return store_->span(); }

  /// Overrides the observation window (e.g. to align several traces).
  void set_window(TimeNs begin, TimeNs end) { store_->set_window(begin, end); }

  /// The backing store.  Hand it to TraceViews, sliding-window sessions or
  /// a SessionManager to share this trace's bytes across many readers.
  [[nodiscard]] const std::shared_ptr<TraceStore>& store() const noexcept {
    return store_;
  }

  /// Zero-copy window selection over the sealed store (requires seal()).
  [[nodiscard]] TraceView view() const { return TraceView(store_); }
  [[nodiscard]] TraceView view(TimeNs t0, TimeNs t1) const {
    return TraceView(store_, t0, t1);
  }

 private:
  std::shared_ptr<TraceStore> store_;
  /// Single-slot materialization scratch: the merged row of the resource
  /// last asked for, tagged with the store generation it was built at.
  mutable std::vector<StateInterval> row_;
  mutable ResourceId row_resource_ = kInvalidResource;
  mutable std::uint64_t row_generation_ = 0;
};

}  // namespace stagg
