// In-memory execution trace: per-resource sorted state intervals.
//
// This is the substrate the paper obtains from Score-P/OTF2 dumps; here it
// is produced either by the synthetic workload generators or by the binary /
// CSV readers.  Resources are identified by their hierarchy path so a trace
// can be re-attached to the platform hierarchy it was captured on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"
#include "trace/state_registry.hpp"

namespace stagg {

class Trace;

/// Throws TraceFormatError if any resource path or state name of `trace`
/// contains a comma or line break — the shared write-time precondition of
/// the unquoted comma-separated trace formats (CSV, pj_dump), checked
/// before a single record is emitted.  `path_kind` names the path field
/// in error messages ("resource path" for CSV, "container path" for
/// pj_dump).
void require_delimiter_safe_names(const Trace& trace,
                                  std::string_view path_kind);

/// Mutable in-memory trace.  Intervals may be appended in any order;
/// seal() sorts each resource's intervals by begin time and freezes the
/// observation window.
class Trace {
 public:
  Trace() = default;

  /// Registers a resource by hierarchy path; returns its dense id.
  /// Re-registering an existing path returns the existing id.
  ResourceId add_resource(std::string_view path);

  /// Number of registered resources.
  [[nodiscard]] std::size_t resource_count() const noexcept {
    return resource_paths_.size();
  }

  [[nodiscard]] const std::string& resource_path(ResourceId r) const {
    return resource_paths_[static_cast<std::size_t>(r)];
  }

  [[nodiscard]] const std::vector<std::string>& resource_paths() const noexcept {
    return resource_paths_;
  }

  /// Finds a resource id by path (-1 when absent).
  [[nodiscard]] ResourceId find_resource(std::string_view path) const;

  /// State-name registry (shared across all resources).
  [[nodiscard]] StateRegistry& states() noexcept { return states_; }
  [[nodiscard]] const StateRegistry& states() const noexcept { return states_; }

  /// Appends a state occurrence.  Throws InvalidArgument on end < begin or
  /// unknown resource/state ids.
  void add_state(ResourceId resource, StateId state, TimeNs begin, TimeNs end);

  /// Convenience: intern the state name and append.
  void add_state(ResourceId resource, std::string_view state_name, TimeNs begin,
                 TimeNs end);

  /// Sorts intervals per resource and computes the observation window.
  /// Idempotent; readers call it automatically.  Each resource tracks its
  /// sorted prefix: a re-seal sorts only the appended tail and merges it
  /// in, so the repeated seal of a streaming ingest path costs
  /// O(appended log appended + merge) instead of a full O(n log n).
  void seal();

  /// Drops every interval ending at or before `cutoff` — intervals that,
  /// by the half-open [begin, end) convention, can never overlap a window
  /// starting at `cutoff`.  Used by sliding sessions to bound retained
  /// memory; sortedness is preserved and an overridden window untouched.
  void erase_before(TimeNs cutoff);

  [[nodiscard]] bool sealed() const noexcept { return sealed_; }

  /// Intervals of one resource (sorted by begin after seal()).
  [[nodiscard]] std::span<const StateInterval> intervals(ResourceId r) const {
    const auto& v = per_resource_[static_cast<std::size_t>(r)];
    return {v.data(), v.size()};
  }

  /// Total number of state occurrences.
  [[nodiscard]] std::uint64_t state_count() const noexcept;

  /// Event count as Table II reports it: one enter + one leave per state.
  [[nodiscard]] std::uint64_t event_count() const noexcept {
    return 2 * state_count();
  }

  /// Observation window [begin, end).  Valid after seal(); an empty trace
  /// reports [0, 0).
  [[nodiscard]] TimeNs begin() const noexcept { return begin_; }
  [[nodiscard]] TimeNs end() const noexcept { return end_; }
  [[nodiscard]] TimeNs span() const noexcept { return end_ - begin_; }

  /// Overrides the observation window (e.g. to align several traces).
  void set_window(TimeNs begin, TimeNs end);

 private:
  std::vector<std::string> resource_paths_;
  std::unordered_map<std::string, ResourceId> resource_ids_;
  StateRegistry states_;
  std::vector<std::vector<StateInterval>> per_resource_;
  /// Per resource: count of leading intervals known to be sorted; seal()
  /// sorts only the tail beyond it and merges.
  std::vector<std::size_t> sorted_prefix_;
  TimeNs begin_ = 0;
  TimeNs end_ = 0;
  bool sealed_ = false;
  bool window_overridden_ = false;
};

}  // namespace stagg
