// Zero-copy window/scope selection over a shared TraceStore.
//
// A TraceView is an immutable snapshot: it pins the sealed chunks that can
// overlap a half-open time window [t0, t1) — selected by the chunks'
// min/max-time fences without touching the columns — for an optional subset
// of the store's resources (a hierarchy scope).  The store may keep
// mutating (append, seal, evict, compact) after the view is taken; the
// view's shared_ptr chunk references keep exactly its snapshot alive.
//
// for_each(r) streams resource r's selected intervals in (begin, end,
// state) order: a single run degenerates to a linear scan, time-ordered
// runs to sequential scans, and overlapping runs to a k-way merge — in all
// cases the same unique sorted sequence a single-chunk store would yield,
// which is what makes model folds bit-identical across chunk layouts.
//
// Entries whose begin lies at or past t1 are pruned per run (begins are
// sorted); entries ending at or before t0 are delivered and clip to
// nothing in the fold — pruning is an optimization, never a semantic.
//
// Storage backends: selection *pins* every chunk it keeps — the shared_ptr
// holds the chunk's payload, and a file-backed (spilled) payload holds its
// mmap region — so a view streams resident, spilled and compressed chunks
// through the same ChunkCursors, bit-identically, and survives the store
// spilling, pinning, evicting or compacting any of them mid-stream.
// Selection nudges the pager for file-backed runs (MADV_SEQUENTIAL +
// MADV_WILLNEED: cursors read front-to-back and are about to).
// spilled_run_count() / compressed_run_count() report how many selected
// runs read file-backed / encoded columns, and cursor_scratch_bytes() the
// decoder scratch one full streaming pass holds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace_store.hpp"

namespace stagg {

class ShardedTraceStore;

class TraceView {
 public:
  TraceView() = default;

  /// Full-window, all-resources view.  Requires a sealed store (the
  /// observation window must be valid).
  explicit TraceView(std::shared_ptr<const TraceStore> store);

  /// Selects [t0, t1) over all resources.  Requires every tail sealed.
  TraceView(std::shared_ptr<const TraceStore> store, TimeNs t0, TimeNs t1);

  /// Selects [t0, t1) over a subset of store resources (a hierarchy
  /// scope), re-indexed densely in the given order.  An empty scope means
  /// all resources.  `scope_paths`, when provided, must hold the paths of
  /// the scope resources in scope order — long-lived scoped readers (a
  /// sliding session building one view per advance) compute them once and
  /// share them across views instead of re-copying strings each time.
  TraceView(std::shared_ptr<const TraceStore> store, TimeNs t0, TimeNs t1,
            std::span<const ResourceId> scope,
            std::shared_ptr<const std::vector<std::string>> scope_paths =
                nullptr);

  /// Selects [t0, t1) over a sharded store (trace/sharded_store.hpp).
  /// Resource ids are the facade's *global* ids; each resource's runs are
  /// selected from its owning shard's chunks, so the view merges the same
  /// per-resource interval sequences a monolithic store holding the same
  /// intervals would yield — folds over a sharded view are bit-identical.
  /// Pins every shard; states()/store() resolve to shard 0 (whose registry
  /// mirrors the facade's).
  TraceView(std::shared_ptr<const ShardedTraceStore> sharded, TimeNs t0,
            TimeNs t1, std::span<const ResourceId> scope = {},
            std::shared_ptr<const std::vector<std::string>> scope_paths =
                nullptr);

  [[nodiscard]] bool valid() const noexcept { return store_ != nullptr; }

  /// Selected window.
  [[nodiscard]] TimeNs begin() const noexcept { return t0_; }
  [[nodiscard]] TimeNs end() const noexcept { return t1_; }

  /// View-local dense resources (the scope), and their paths.  Unscoped
  /// views pin the store's copy-on-write path table (a shared_ptr copy,
  /// no string copies, stable under later add_resource); scoped views
  /// hold — or share via the scope_paths constructor argument — their
  /// re-indexed subset.
  [[nodiscard]] std::size_t resource_count() const noexcept {
    return store_ids_.size();
  }
  [[nodiscard]] const std::vector<std::string>& resource_paths()
      const noexcept {
    return *paths_;
  }
  /// Store id backing view resource `r`.
  [[nodiscard]] ResourceId store_resource(std::size_t r) const {
    return store_ids_[r];
  }

  [[nodiscard]] const StateRegistry& states() const noexcept {
    return store_->states();
  }
  [[nodiscard]] const TraceStore& store() const noexcept { return *store_; }
  [[nodiscard]] const std::shared_ptr<const TraceStore>& store_ptr()
      const noexcept {
    return store_;
  }

  /// Number of intervals the cursors will deliver (upper bound on the
  /// window's population: per-run begin-pruned, not end-filtered).
  [[nodiscard]] std::uint64_t selected_count() const noexcept;

  /// Number of selected runs whose chunk is file-backed (spilled) rather
  /// than resident — instrumentation for tests and memory accounting.
  [[nodiscard]] std::size_t spilled_run_count() const noexcept;

  /// Number of selected runs whose chunk holds encoded (compressed)
  /// columns and therefore streams through a decoding cursor.
  [[nodiscard]] std::size_t compressed_run_count() const noexcept;

  /// Decoder scratch bytes a full for_each pass over every resource holds
  /// live at once (one fixed-size cursor per compressed run in the
  /// resource currently streaming; this reports the worst resource for
  /// the merge path, i.e. the accounting upper bound).
  [[nodiscard]] std::size_t cursor_scratch_bytes() const noexcept;

  /// Streams view resource `r`'s selected intervals to `f(StateInterval)`
  /// in (begin, end, state) order.
  template <class F>
  void for_each(std::size_t r, F&& f) const {
    const auto& runs = runs_[r];
    if (runs.empty()) return;
    if (runs.size() == 1 || concat_ok_[r] != 0) {
      // Time-ordered runs: sequential cursor scans (one decoder live at a
      // time for compressed runs).
      for (const Run& run : runs) {
        for (ChunkCursor c(*run.chunk, run.size); c.valid(); c.next()) {
          f(c.current());
        }
      }
      return;
    }
    // Overlapping runs: the canonical k-way merge (k is bounded by the
    // store's compaction threshold, and this path only triggers for
    // genuinely out-of-order ingest).
    std::vector<ChunkRun> merge_runs;
    merge_runs.reserve(runs.size());
    for (const Run& run : runs) {
      merge_runs.push_back({run.chunk.get(), run.size});
    }
    merge_chunk_runs(std::span<const ChunkRun>(merge_runs),
                     std::forward<F>(f));
  }

 private:
  /// Selected prefix [0, size) of one pinned chunk, with its boundary
  /// intervals (recorded at selection so the concatenation check never
  /// re-decodes compressed chunks) and the cursor scratch one streaming
  /// pass over it holds.
  struct Run {
    TraceChunkPtr chunk;
    std::size_t size = 0;
    StateInterval first{};
    StateInterval last{};
    std::size_t scratch = 0;
  };

  void init(std::span<const ResourceId> scope,
            std::shared_ptr<const std::vector<std::string>> scope_paths);
  void select_runs();
  [[nodiscard]] std::span<const TraceChunkPtr> chunks_of(
      std::size_t view_resource) const;

  std::shared_ptr<const TraceStore> store_;
  /// Set for views over a ShardedTraceStore; store_ then aliases shard 0
  /// and chunk selection routes per resource through the facade.
  std::shared_ptr<const ShardedTraceStore> sharded_;
  TimeNs t0_ = 0;
  TimeNs t1_ = 0;
  std::vector<ResourceId> store_ids_;
  /// Pinned path snapshot: the store's COW table for full views, the
  /// re-indexed subset (shareable across one reader's views) when scoped.
  std::shared_ptr<const std::vector<std::string>> paths_;
  std::vector<std::vector<Run>> runs_;
  /// Per view resource: runs are pairwise key-ordered, so concatenation
  /// is already the merged order.
  std::vector<std::uint8_t> concat_ok_;
};

}  // namespace stagg
