#include "trace/sharded_store.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "common/contract.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace stagg {

ShardedTraceStore::ShardedTraceStore(const Hierarchy& hierarchy,
                                     std::shared_ptr<const ShardPlan> plan,
                                     bool make_stores)
    : hierarchy_(&hierarchy), plan_(std::move(plan)) {
  if (!plan_) throw InvalidArgument("ShardedTraceStore: null shard plan");
  if (plan_->hierarchy() != hierarchy_) {
    throw InvalidArgument(
        "ShardedTraceStore: the plan partitions a different hierarchy");
  }
  if (make_stores) {
    shards_.reserve(plan_->shard_count());
    for (std::size_t k = 0; k < plan_->shard_count(); ++k) {
      shards_.push_back(std::make_shared<TraceStore>());
    }
  }
}

ShardedTraceStore::ShardedTraceStore(const Hierarchy& hierarchy,
                                     std::shared_ptr<const ShardPlan> plan)
    : ShardedTraceStore(hierarchy, std::move(plan), /*make_stores=*/true) {}

ShardedTraceStore::ShardedTraceStore(const Hierarchy& hierarchy,
                                     std::shared_ptr<const ShardPlan> plan,
                                     const TraceStore& source)
    : ShardedTraceStore(hierarchy, std::move(plan), /*make_stores=*/true) {
  if (!source.tails_sealed()) {
    throw InvalidArgument(
        "ShardedTraceStore: the source store has unsealed tails "
        "(seal_chunk first)");
  }
  // Global ids keep the source's order; states mirror in source intern
  // order, so every id in an adopted chunk is valid in its shard.
  for (const std::string& name : source.states().names()) {
    (void)intern_state(name);
  }
  for (std::size_t r = 0; r < source.resource_count(); ++r) {
    const ResourceId global =
        add_resource(source.resource_path(static_cast<ResourceId>(r)));
    const Route rt = route(global);
    for (const TraceChunkPtr& chunk :
         source.chunks(static_cast<ResourceId>(r))) {
      shards_[rt.shard]->adopt_chunk(rt.local, chunk);
    }
  }
  // Seal derives each shard's window and audit state.  The source's spill
  // configuration and eviction horizon are deliberately not inherited:
  // spill files must be per shard (enable_spill), and the horizon re-forms
  // at the first central eviction.
  seal_chunk();
  set_compression(source.compression());
}

std::size_t ShardedTraceStore::route_path(std::string_view path,
                                          ResourceId global) const {
  const NodeId node = hierarchy_->find(path);
  if (node != kNoNode && hierarchy_->is_leaf(node)) {
    return plan_->shard_of_leaf(hierarchy_->node(node).first_leaf);
  }
  return static_cast<std::size_t>(global) % shards_.size();
}

ResourceId ShardedTraceStore::add_resource(std::string_view path) {
  if (const auto it = resource_ids_.find(std::string(path));
      it != resource_ids_.end()) {
    return it->second;
  }
  if (resource_paths_.use_count() > 1) {  // pinned by a view or a copy
    resource_paths_ =
        std::make_shared<std::vector<std::string>>(*resource_paths_);
  }
  const ResourceId global = static_cast<ResourceId>(resource_paths_->size());
  const std::size_t shard = route_path(path, global);
  const ResourceId local = shards_[shard]->add_resource(path);
  resource_paths_->emplace_back(path);
  resource_ids_.emplace(resource_paths_->back(), global);
  shard_of_.push_back(static_cast<std::int32_t>(shard));
  local_of_.push_back(local);
  return global;
}

ResourceId ShardedTraceStore::find_resource(std::string_view path) const {
  const auto it = resource_ids_.find(std::string(path));
  return it == resource_ids_.end() ? kInvalidResource : it->second;
}

StateId ShardedTraceStore::intern_state(std::string_view name) {
  const StateId id = shards_[0]->states().intern(name);
  for (std::size_t k = 1; k < shards_.size(); ++k) {
    const StateId mirrored = shards_[k]->states().intern(name);
    if (mirrored != id) {
      throw ContractError(
          "ShardedTraceStore::intern_state: shard registries diverged");
    }
  }
  return id;
}

void ShardedTraceStore::add_state(ResourceId global, StateId state,
                                  TimeNs begin, TimeNs end) {
  if (global < 0 ||
      static_cast<std::size_t>(global) >= resource_paths_->size()) {
    throw InvalidArgument("ShardedTraceStore::add_state: unknown resource " +
                          std::to_string(global));
  }
  const Route rt = route(global);
  shards_[rt.shard]->add_state(rt.local, state, begin, end);
}

void ShardedTraceStore::ingest(std::span<const EventRecord> records) {
  const std::size_t n_shards = shards_.size();
  if (n_shards == 1) {
    for (const EventRecord& rec : records) {
      add_state(rec.resource, rec.state, rec.begin, rec.end);
    }
    return;
  }
  // Counting sort by shard: one pass to count, one to scatter indices,
  // then each shard's bucket is appended by exactly one task — the
  // single-writer rule holds per shard and per-shard arrival order is
  // preserved (the scatter is stable).
  std::vector<std::size_t> counts(n_shards, 0);
  for (const EventRecord& rec : records) {
    if (rec.resource < 0 ||
        static_cast<std::size_t>(rec.resource) >= resource_paths_->size()) {
      throw InvalidArgument(
          "ShardedTraceStore::ingest: unknown resource " +
          std::to_string(rec.resource));
    }
    ++counts[shard_of(rec.resource)];
  }
  std::vector<std::size_t> offsets(n_shards + 1, 0);
  for (std::size_t k = 0; k < n_shards; ++k) {
    offsets[k + 1] = offsets[k] + counts[k];
  }
  std::vector<std::uint32_t> order(records.size());
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < records.size(); ++i) {
      order[cursor[shard_of(records[i].resource)]++] =
          static_cast<std::uint32_t>(i);
    }
  }
  parallel_for(
      n_shards,
      [&](std::size_t k) {
        TraceStore& store = *shards_[k];
        for (std::size_t pos = offsets[k]; pos < offsets[k + 1]; ++pos) {
          const EventRecord& rec = records[order[pos]];
          const Route rt = route(rec.resource);
          store.add_state(rt.local, rec.state, rec.begin, rec.end);
        }
      },
      /*grain=*/1);
}

void ShardedTraceStore::seal_chunk() {
  parallel_for(
      shards_.size(), [&](std::size_t k) { shards_[k]->seal_chunk(); },
      /*grain=*/1);
}

void ShardedTraceStore::evict_before(TimeNs cutoff) {
  for (const auto& shard : shards_) shard->evict_before(cutoff);
}

void ShardedTraceStore::set_compression(ChunkCompression policy) {
  for (const auto& shard : shards_) shard->set_compression(policy);
}

void ShardedTraceStore::enable_spill(const std::string& path) {
  if (shards_.size() == 1) {
    shards_[0]->enable_spill(path);
    return;
  }
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    shards_[k]->enable_spill(path + ".s" + std::to_string(k));
  }
}

std::size_t ShardedTraceStore::spill_cold(std::size_t budget_bytes) {
  if (!spill_enabled()) {
    throw InvalidArgument(
        "ShardedTraceStore::spill_cold: no spill files configured "
        "(call enable_spill first)");
  }
  const std::size_t n_shards = shards_.size();
  std::vector<std::size_t> resident(n_shards, 0);
  std::size_t total = 0;
  for (std::size_t k = 0; k < n_shards; ++k) {
    resident[k] = shards_[k]->resident_chunk_bytes();
    total += resident[k];
  }
  last_split_budget_ = budget_bytes;
  if (total <= budget_bytes) {
    // Every shard already fits inside its own footprint: record the
    // trivially-holding split and spill nothing.
    last_split_ = std::move(resident);
    return 0;
  }
  // Proportional-to-resident floor shares: floor(budget * r_k / total)
  // summed over k never exceeds the budget, so enforcing each share
  // per shard enforces the global cap exactly.  128-bit intermediate —
  // budget * resident can overflow 64 bits for large stores.
  last_split_.assign(n_shards, 0);
  for (std::size_t k = 0; k < n_shards; ++k) {
    last_split_[k] = static_cast<std::size_t>(
        static_cast<unsigned __int128>(budget_bytes) * resident[k] / total);
  }
  std::vector<std::size_t> spilled(n_shards, 0);
  parallel_for(
      n_shards,
      [&](std::size_t k) {
        if (resident[k] > last_split_[k]) {
          spilled[k] = shards_[k]->spill_cold(last_split_[k]);
        }
      },
      /*grain=*/1);
  return std::accumulate(spilled.begin(), spilled.end(), std::size_t{0});
}

TimeNs ShardedTraceStore::begin() const noexcept {
  TimeNs lo = std::numeric_limits<TimeNs>::max();
  bool any = false;
  for (const auto& shard : shards_) {
    if (shard->state_count() == 0) continue;
    lo = std::min(lo, shard->begin());
    any = true;
  }
  return any ? lo : 0;
}

TimeNs ShardedTraceStore::end() const noexcept {
  TimeNs hi = std::numeric_limits<TimeNs>::min();
  bool any = false;
  for (const auto& shard : shards_) {
    if (shard->state_count() == 0) continue;
    hi = std::max(hi, shard->end());
    any = true;
  }
  return any ? hi : 0;
}

bool ShardedTraceStore::sealed() const noexcept {
  return std::all_of(shards_.begin(), shards_.end(),
                     [](const auto& s) { return s->sealed(); });
}

bool ShardedTraceStore::tails_sealed() const noexcept {
  return std::all_of(shards_.begin(), shards_.end(),
                     [](const auto& s) { return s->tails_sealed(); });
}

std::uint64_t ShardedTraceStore::state_count() const noexcept {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->state_count();
  return n;
}

std::size_t ShardedTraceStore::store_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->store_bytes();
  return n;
}

std::size_t ShardedTraceStore::resident_chunk_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->resident_chunk_bytes();
  return n;
}

std::size_t ShardedTraceStore::spilled_chunk_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->spilled_chunk_bytes();
  return n;
}

std::shared_ptr<ShardedTraceStore> ShardedTraceStore::snapshot() const {
  auto snap = std::shared_ptr<ShardedTraceStore>(new ShardedTraceStore(
      *hierarchy_, plan_, /*make_stores=*/false));
  snap->shards_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    // Copying a TraceStore shares its sealed chunks; sealing freezes any
    // tails so the snapshot is a stable from-scratch substrate.
    auto copy = std::make_shared<TraceStore>(*shard);
    copy->seal_chunk();
    snap->shards_.push_back(std::move(copy));
  }
  snap->shard_of_ = shard_of_;
  snap->local_of_ = local_of_;
  snap->resource_paths_ = resource_paths_;
  snap->resource_ids_ = resource_ids_;
  return snap;
}

void ShardedTraceStore::audit() const {
  const auto fail = [](const std::string& what) {
    throw ContractError("ShardedTraceStore::audit: " + what);
  };
  if (shards_.empty()) fail("no shards");
  if (shards_.size() != plan_->shard_count()) {
    fail("shard count disagrees with the plan");
  }
  plan_->audit();
  for (const auto& shard : shards_) shard->audit();

  // Router: every global resource routed to exactly one shard, the local
  // lane exists and names the same path, and the per-shard resource
  // counts sum back to the global table (no orphan lanes).
  if (shard_of_.size() != resource_paths_->size() ||
      local_of_.size() != resource_paths_->size()) {
    fail("route tables and the resource table disagree in size");
  }
  std::vector<std::size_t> routed(shards_.size(), 0);
  for (std::size_t g = 0; g < resource_paths_->size(); ++g) {
    const std::int32_t shard = shard_of_[g];
    if (shard < 0 || static_cast<std::size_t>(shard) >= shards_.size()) {
      fail("resource " + std::to_string(g) + " routed to a bogus shard");
    }
    const ResourceId local = local_of_[g];
    const TraceStore& store = *shards_[static_cast<std::size_t>(shard)];
    if (local < 0 ||
        static_cast<std::size_t>(local) >= store.resource_count()) {
      fail("resource " + std::to_string(g) + " routed to a bogus lane");
    }
    if (store.resource_path(local) != (*resource_paths_)[g]) {
      fail("resource " + std::to_string(g) +
           " path disagrees with its shard lane");
    }
    ++routed[static_cast<std::size_t>(shard)];
  }
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    if (routed[k] != shards_[k]->resource_count()) {
      fail("shard " + std::to_string(k) + " holds " +
           std::to_string(shards_[k]->resource_count()) +
           " lanes but routes " + std::to_string(routed[k]) + " resources");
    }
  }

  // Shard consistency: registries mirror shard 0, and the knobs the
  // facade fans out (horizon, compression, spill) agree everywhere.
  for (std::size_t k = 1; k < shards_.size(); ++k) {
    if (!(shards_[k]->states() == shards_[0]->states())) {
      fail("shard " + std::to_string(k) + " state registry diverged");
    }
    if (shards_[k]->evict_horizon() != shards_[0]->evict_horizon()) {
      fail("shard " + std::to_string(k) + " eviction horizon diverged");
    }
    if (shards_[k]->compression() != shards_[0]->compression()) {
      fail("shard " + std::to_string(k) + " compression policy diverged");
    }
    if (shards_[k]->spill_enabled() != shards_[0]->spill_enabled()) {
      fail("shard " + std::to_string(k) + " spill configuration diverged");
    }
  }

  // Budget split accounting: the last recorded split never sums past its
  // budget (the floor-share guarantee the global cap rests on).
  if (!last_split_.empty()) {
    if (last_split_.size() != shards_.size()) {
      fail("budget split record has the wrong shard count");
    }
    std::size_t sum = 0;
    for (const std::size_t share : last_split_) sum += share;
    if (sum > last_split_budget_) {
      fail("budget split sums past the budget it enforced");
    }
  }
}

}  // namespace stagg
