#include "trace/paje_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace stagg {
namespace {

/// Largest |seconds| whose nanosecond count fits in TimeNs (int64):
/// 2^63 ns ≈ 9.223e9 s; stay just inside so llround cannot overflow.
constexpr double kMaxAbsSeconds = 9.2e9;

/// Seconds (pj_dump) to nanoseconds, with round-to-nearest so that
/// begin + duration == end survives the conversion.  Non-finite values and
/// magnitudes whose nanosecond count would overflow the 64-bit TimeNs make
/// llround undefined behaviour — reject them with the line context instead.
TimeNs paje_time(double seconds_value, const std::string& where) {
  // Negated form so NaN (every comparison false) is rejected too.
  if (!(std::abs(seconds_value) <= kMaxAbsSeconds)) {
    char num[32];
    std::snprintf(num, sizeof num, "%g", seconds_value);
    throw TraceFormatError(std::string("timestamp ") + num +
                           " s is not representable in nanoseconds (finite, "
                           "|t| <= 9.2e9 s required) at " + where);
  }
  return static_cast<TimeNs>(std::llround(seconds_value * 1e9));
}

}  // namespace

Trace read_paje_dump(std::istream& is, const std::string& context,
                     PajeReadStats* stats) {
  Trace trace;
  PajeReadStats local;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#' || sv.front() == '%') {
      ++local.comment_lines;
      continue;
    }
    const auto fields = split(sv, ',');
    const std::string_view kind = trim(fields[0]);
    if (kind != "State") {
      ++local.skipped_records;
      continue;
    }
    const std::string where = context + ":" + std::to_string(line_no);
    if (fields.size() != 8) {
      // More than 8 fields is ambiguous between unsupported extra pj_dump
      // columns and a comma embedded in a container/state name (the format
      // has no escaping, so such a name shifts every later field); both
      // would silently mis-assign fields, so reject with the line context.
      throw TraceFormatError(
          "State record needs exactly 8 fields, got " +
          std::to_string(fields.size()) + " at " + where +
          (fields.size() > 8 ? " (extra trailing fields are not supported, "
                               "and names must not contain commas)"
                             : ""));
    }
    const std::string_view container = trim(fields[1]);
    const double begin_s = parse_double(fields[3], where);
    const double end_s = parse_double(fields[4], where);
    const std::string_view value = trim(fields[7]);
    if (end_s < begin_s) {
      throw TraceFormatError("State with end < begin at " + where);
    }
    const ResourceId r = trace.add_resource(container);
    trace.add_state(r, value, paje_time(begin_s, where),
                    paje_time(end_s, where));
    ++local.state_records;
  }
  trace.seal();
  if (stats != nullptr) *stats = local;
  return trace;
}

Trace read_paje_dump(const std::string& path, PajeReadStats* stats) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open '" + path + "'");
  return read_paje_dump(is, path, stats);
}

void write_paje_dump(Trace& trace, std::ostream& os) {
  trace.seal();
  // The format has no escaping: a comma inside a name would be re-read as
  // a field separator, silently corrupting the roundtrip.
  require_delimiter_safe_names(trace, "container path");
  os << "# pj_dump-compatible state list (stagg)\n";
  char buf[64];
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    const auto& path = trace.resource_path(r);
    for (const auto& s : trace.intervals(r)) {
      const double begin_s = to_seconds(s.begin);
      const double end_s = to_seconds(s.end);
      std::snprintf(buf, sizeof buf, "%.9f, %.9f, %.9f", begin_s, end_s,
                    end_s - begin_s);
      os << "State, " << path << ", STATE, " << buf << ", 0, "
         << trace.states().name(s.state) << '\n';
    }
  }
}

std::uint64_t write_paje_dump(Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open '" + path + "' for writing");
  write_paje_dump(trace, os);
  os.flush();
  if (!os) throw IoError("short write to '" + path + "'");
  return static_cast<std::uint64_t>(os.tellp());
}

}  // namespace stagg
