#include "trace/paje_io.hpp"

#include <cstddef>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "trace/stream_decode.hpp"

namespace stagg {

Trace read_paje_dump(std::istream& is, const std::string& context,
                     PajeReadStats* stats) {
  // Thin shim over the resumable byte-range decoder (stream_decode.hpp):
  // the whole-file path and the pipeline's parallel shard decode share one
  // record grammar (field count, timestamp range checks, skip rules), so
  // they accept and reject exactly the same inputs.
  Trace trace;
  TextTraceDecoder decoder(TextTraceFormat::kPaje, context);
  const DecodedTextSink sink = [&trace](const DecodedTextRecord& rec) {
    const ResourceId r = trace.add_resource(rec.resource);
    trace.add_state(r, rec.state, rec.begin, rec.end);
  };
  char buf[1 << 16];
  while (is.read(buf, sizeof buf) || is.gcount() > 0) {
    decoder.feed({buf, static_cast<std::size_t>(is.gcount())}, sink);
  }
  decoder.finish(sink);
  trace.seal();
  if (stats != nullptr) {
    stats->state_records = decoder.stats().records;
    stats->skipped_records = decoder.stats().skipped_records;
    stats->comment_lines = decoder.stats().comment_lines;
  }
  return trace;
}

Trace read_paje_dump(const std::string& path, PajeReadStats* stats) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open '" + path + "'");
  return read_paje_dump(is, path, stats);
}

void write_paje_dump(Trace& trace, std::ostream& os) {
  trace.seal();
  // The format has no escaping: a comma inside a name would be re-read as
  // a field separator, silently corrupting the roundtrip.
  require_delimiter_safe_names(trace, "container path");
  os << "# pj_dump-compatible state list (stagg)\n";
  char buf[64];
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    const auto& path = trace.resource_path(r);
    for (const auto& s : trace.intervals(r)) {
      const double begin_s = to_seconds(s.begin);
      const double end_s = to_seconds(s.end);
      std::snprintf(buf, sizeof buf, "%.9f, %.9f, %.9f", begin_s, end_s,
                    end_s - begin_s);
      os << "State, " << path << ", STATE, " << buf << ", 0, "
         << trace.states().name(s.state) << '\n';
    }
  }
}

std::uint64_t write_paje_dump(Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open '" + path + "' for writing");
  write_paje_dump(trace, os);
  os.flush();
  if (!os) throw IoError("short write to '" + path + "'");
  return static_cast<std::uint64_t>(os.tellp());
}

}  // namespace stagg
