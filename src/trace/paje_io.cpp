#include "trace/paje_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace stagg {
namespace {

/// Seconds (pj_dump) to nanoseconds, with round-to-nearest so that
/// begin + duration == end survives the conversion.
TimeNs paje_time(double seconds_value) {
  return static_cast<TimeNs>(std::llround(seconds_value * 1e9));
}

}  // namespace

Trace read_paje_dump(std::istream& is, const std::string& context,
                     PajeReadStats* stats) {
  Trace trace;
  PajeReadStats local;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#' || sv.front() == '%') {
      ++local.comment_lines;
      continue;
    }
    const auto fields = split(sv, ',');
    const std::string_view kind = trim(fields[0]);
    if (kind != "State") {
      ++local.skipped_records;
      continue;
    }
    const std::string where = context + ":" + std::to_string(line_no);
    if (fields.size() < 8) {
      throw TraceFormatError("State record needs 8 fields at " + where);
    }
    const std::string_view container = trim(fields[1]);
    const double begin_s = parse_double(fields[3], where);
    const double end_s = parse_double(fields[4], where);
    const std::string_view value = trim(fields[7]);
    if (end_s < begin_s) {
      throw TraceFormatError("State with end < begin at " + where);
    }
    const ResourceId r = trace.add_resource(container);
    trace.add_state(r, value, paje_time(begin_s), paje_time(end_s));
    ++local.state_records;
  }
  trace.seal();
  if (stats != nullptr) *stats = local;
  return trace;
}

Trace read_paje_dump(const std::string& path, PajeReadStats* stats) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open '" + path + "'");
  return read_paje_dump(is, path, stats);
}

void write_paje_dump(Trace& trace, std::ostream& os) {
  trace.seal();
  os << "# pj_dump-compatible state list (stagg)\n";
  char buf[64];
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    const auto& path = trace.resource_path(r);
    for (const auto& s : trace.intervals(r)) {
      const double begin_s = to_seconds(s.begin);
      const double end_s = to_seconds(s.end);
      std::snprintf(buf, sizeof buf, "%.9f, %.9f, %.9f", begin_s, end_s,
                    end_s - begin_s);
      os << "State, " << path << ", STATE, " << buf << ", 0, "
         << trace.states().name(s.state) << '\n';
    }
  }
}

std::uint64_t write_paje_dump(Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open '" + path + "' for writing");
  write_paje_dump(trace, os);
  os.flush();
  if (!os) throw IoError("short write to '" + path + "'");
  return static_cast<std::uint64_t>(os.tellp());
}

}  // namespace stagg
