// Incremental, resumable trace-record decoders — the parse stage of the
// staged ingest pipeline.
//
// The classic readers (csv_io, paje_io, binary_io) consume a whole file in
// one call on one thread.  Live ingest instead hands *byte ranges* to
// parallel parse workers: each worker owns a resumable decoder, feeds it
// whatever slice of the stream it was handed next, and receives records as
// soon as they complete — a record split across two feeds carries over
// transparently.  The whole-file readers are thin shims over these
// decoders (one loop feeding fixed-size buffers), so both paths decode —
// and reject malformed input — identically.
//
// Decoded events travel between pipeline stages as EventBatch messages:
// id-resolved records (the parse workers resolve names against the frozen
// tables of a schema-complete store) plus per-batch time fences and a
// per-shard sequence number for observability.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"

namespace stagg {

// --- Text formats (CSV, pj_dump) -------------------------------------------

/// One decoded text record; the name views point into the decoder's input
/// (or its carry buffer) and are valid only during the sink call.
struct DecodedTextRecord {
  std::string_view resource;
  std::string_view state;
  TimeNs begin = 0;
  TimeNs end = 0;
};

using DecodedTextSink = std::function<void(const DecodedTextRecord&)>;

/// Line-oriented format a TextTraceDecoder speaks.
enum class TextTraceFormat : std::uint8_t {
  kCsv,   ///< stagg-trace-csv: STATE,<resource>,<state>,<begin_ns>,<end_ns>
  kPaje,  ///< pj_dump: State, <container>, <type>, <begin_s>, <end_s>, ...
};

/// Counters of one text decode (what was consumed vs skipped).
struct TextDecodeStats {
  std::uint64_t records = 0;        ///< State records decoded.
  std::uint64_t skipped_records = 0;  ///< Non-State pj_dump records.
  std::uint64_t comment_lines = 0;
};

/// Resumable decoder over byte ranges of a CSV or pj_dump trace stream.
///
/// Feed slices in stream order; every completed line is decoded
/// immediately and State records are emitted through the sink.  A partial
/// trailing line is carried into the next feed(); finish() flushes a final
/// unterminated line.  Malformed records throw TraceFormatError naming
/// `context:line`, with line numbers counted across feeds — byte-range
/// decode rejects exactly what the whole-file readers reject.
class TextTraceDecoder {
 public:
  explicit TextTraceDecoder(TextTraceFormat format,
                            std::string context = "<stream>");

  /// Decodes every line completed by `bytes`; partial tails carry over.
  void feed(std::string_view bytes, const DecodedTextSink& sink);
  /// Flushes a trailing unterminated line.  Idempotent.
  void finish(const DecodedTextSink& sink);

  [[nodiscard]] const TextDecodeStats& stats() const noexcept {
    return stats_;
  }
  /// Observation window from a CSV `# window,<begin>,<end>` comment.
  [[nodiscard]] bool has_window() const noexcept { return has_window_; }
  [[nodiscard]] TimeNs window_begin() const noexcept { return window_begin_; }
  [[nodiscard]] TimeNs window_end() const noexcept { return window_end_; }

 private:
  void decode_line(std::string_view line, const DecodedTextSink& sink);

  TextTraceFormat format_;
  std::string context_;
  std::string carry_;  ///< Partial line straddling feed boundaries.
  std::size_t line_no_ = 0;
  TextDecodeStats stats_;
  bool has_window_ = false;
  TimeNs window_begin_ = 0;
  TimeNs window_end_ = 0;
};

/// Splits `text` into at most `shards` contiguous byte ranges aligned to
/// line boundaries, so each shard decodes independently on its own
/// TextTraceDecoder (records never straddle shards in the line-per-record
/// formats).  Shards are near-equal in bytes; fewer ranges come back when
/// the text has fewer lines than `shards`.
[[nodiscard]] std::vector<std::string_view> split_text_shards(
    std::string_view text, std::size_t shards);

// --- STGT binary records ----------------------------------------------------

/// One on-disk STGT record paired with its resource (also the streaming
/// unit of binary_io's whole-file reader).
struct StgtRecord {
  ResourceId resource;
  StateInterval interval;
};

using StgtRecordSink = std::function<void(const StgtRecord&)>;

/// Resumable decoder over byte ranges of an STGT *record section* (the
/// fixed 24-byte records after the header and tables).  Feed slices in
/// order; a record straddling two feeds carries over.  Records referencing
/// out-of-range resource/state ids or with end < begin throw
/// TraceFormatError naming the absolute file offset (base_offset plus the
/// record's position), exactly like the whole-file reader.
class StgtRecordDecoder {
 public:
  /// Record payload size: u32 resource | u32 state | i64 begin | i64 end.
  static constexpr std::size_t kRecordBytes = 24;

  StgtRecordDecoder(std::uint64_t resource_count, std::uint64_t state_count,
                    std::string context = "<stream>",
                    std::uint64_t base_offset = 0);

  void feed(std::span<const std::uint8_t> bytes, const StgtRecordSink& sink);
  /// Throws TraceFormatError when a partial record is pending.
  void finish() const;

  [[nodiscard]] std::uint64_t records_decoded() const noexcept {
    return decoded_;
  }

 private:
  void emit(const std::uint8_t* record, const StgtRecordSink& sink);

  std::uint64_t resource_count_;
  std::uint64_t state_count_;
  std::string context_;
  std::uint64_t base_offset_;
  std::uint64_t decoded_ = 0;
  std::uint8_t carry_[kRecordBytes];
  std::size_t carry_len_ = 0;
};

// --- Pipeline messages ------------------------------------------------------

/// One id-resolved event, ready for TraceStore::add_state.
struct EventRecord {
  ResourceId resource = 0;
  StateId state = 0;
  TimeNs begin = 0;
  TimeNs end = 0;
};

/// A batch of decoded events flowing from a parse worker to the seal
/// worker.  Records keep shard decode order; ordering across shards is
/// irrelevant — the seal stage sorts at chunk-seal time, and the store's
/// merge is layout-independent.
struct EventBatch {
  std::size_t shard = 0;       ///< Producing parse shard.
  std::uint64_t sequence = 0;  ///< Per-shard batch sequence (0-based).
  std::vector<EventRecord> records;
  /// Time fences over `records` (meaningless when empty).
  TimeNs min_begin = 0;
  TimeNs max_end = 0;
};

}  // namespace stagg
