// Registry of state types (the trace state dimension X, paper §III-A(3)).
//
// The paper renounces any algebraic structure on X: the registry is a flat
// name <-> id table.  Ids are dense and stable, so per-state arrays in the
// microscopic model are indexed directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace stagg {

using StateId = std::int32_t;

/// Dense bidirectional map between state names ("MPI_Send") and ids.
class StateRegistry {
 public:
  /// Returns the id of `name`, registering it if new.
  StateId intern(std::string_view name);

  /// Returns the id of `name` or nullopt when unknown.
  [[nodiscard]] std::optional<StateId> find(std::string_view name) const;

  /// Name of a registered id.
  [[nodiscard]] const std::string& name(StateId id) const {
    return names_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] bool empty() const noexcept { return names_.empty(); }

  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

  friend bool operator==(const StateRegistry& a, const StateRegistry& b) {
    return a.names_ == b.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, StateId> ids_;
};

inline StateId StateRegistry::intern(std::string_view name) {
  if (const auto it = ids_.find(std::string(name)); it != ids_.end()) {
    return it->second;
  }
  const StateId id = static_cast<StateId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

inline std::optional<StateId> StateRegistry::find(std::string_view name) const {
  const auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

}  // namespace stagg
