// Columnar chunk compression: self-describing per-column codecs behind a
// common block writer/reader interface (dariadb-style compression layer).
//
// A sealed chunk's columns are sorted by (begin, end, state) — ideal input
// for delta-family time codecs and dictionary-family state codecs.  The
// encoder measures every candidate codec per column and keeps the cheapest;
// each column's codec tag travels with the encoded block (in the
// CompressedChunkPayload for in-memory chunks, in the STGC v2 record header
// on disk), so blocks are self-describing and a raw fallback guarantees the
// encoded form is never larger than the raw columns.
//
// Column value streams (what the codec numbers mean):
//   begin column: the raw begin timestamps.  kRaw stores them as 8-byte
//     little-endian words (zero-copy mappable); the delta codecs exploit
//     sortedness; kGapFromPrevEnd stores begin[i] - end[i-1], which is
//     exactly 0 for gapless traces (one varint byte per interval).
//   end column: kRaw stores the raw end timestamps (zero-copy mappable);
//     every other codec operates on the *duration* sequence end[i] -
//     begin[i], exploiting short durations.
//   state column: kRaw stores raw 4-byte ids; the dictionary codecs store
//     a sorted dictionary of the distinct ids plus RLE runs or bit-packed
//     dictionary indexes.
//
// All integer deltas are computed in wrap-around uint64 arithmetic and
// zigzag-mapped before varint coding, so columns spanning the full int64
// range round-trip bit-exactly.  Decoding is streaming: ColumnsDecoder
// yields one StateInterval at a time from the encoded sections through a
// fixed-size cursor state — whole columns are never materialised.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "trace/event.hpp"

namespace stagg {

// --- Codec tags (on-disk stable; never renumber) ---------------------------

/// Codecs of the two time columns.  kGapFromPrevEnd is only meaningful for
/// the begin column (decoding it needs the previous interval's end).
enum class TimeCodec : std::uint8_t {
  kRaw = 0,            ///< 8-byte little-endian values.
  kDelta = 1,          ///< zigzag-varint: first value, then deltas.
  kDeltaOfDelta = 2,   ///< zigzag-varint: first value, first delta, then
                       ///< second-order deltas.
  kConst = 3,          ///< one zigzag-varint value; all entries equal.
  kGapFromPrevEnd = 4  ///< zigzag-varint: first begin, then
                       ///< begin[i] - end[i-1] (begin column only).
};

/// Codecs of the state column.
enum class StateCodec : std::uint8_t {
  kRaw = 0,          ///< 4-byte little-endian ids.
  kDictRle = 1,      ///< sorted dictionary + (index, run-length) varint
                     ///< pairs.
  kDictBitpack = 2,  ///< sorted dictionary + ceil(log2(|dict|))-bit packed
                     ///< indexes (0 bits when the dictionary is singular).
};

/// On-disk tag byte of a codec (the enums' underlying type is uint8_t, so
/// these are value-preserving — the codec .cpp files themselves are barred
/// from bare narrowing casts by tools/stagg_lint.py).
[[nodiscard]] constexpr std::uint8_t time_codec_tag(TimeCodec c) noexcept {
  return static_cast<std::uint8_t>(c);
}
[[nodiscard]] constexpr std::uint8_t state_codec_tag(StateCodec c) noexcept {
  return static_cast<std::uint8_t>(c);
}

[[nodiscard]] bool time_codec_valid(std::uint8_t tag) noexcept;
[[nodiscard]] bool state_codec_valid(std::uint8_t tag) noexcept;
[[nodiscard]] const char* time_codec_name(TimeCodec codec) noexcept;
[[nodiscard]] const char* state_codec_name(StateCodec codec) noexcept;

// --- Varint / zigzag primitives (exposed for the property tests) -----------

[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t u) noexcept {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// LEB128-style base-128 varint, 1..10 bytes.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
[[nodiscard]] std::size_t varint_size(std::uint64_t v) noexcept;

// --- Encoded form ----------------------------------------------------------

/// Borrowed description of one chunk's encoded columns: codec tags plus the
/// three encoded sections (unpadded).  This is what a decoder consumes —
/// the sections may live in a heap buffer (compressed-resident payloads)
/// or in a mapped STGC v2 record.
struct ColumnsCoding {
  std::uint64_t count = 0;
  TimeCodec begin_codec = TimeCodec::kRaw;
  TimeCodec end_codec = TimeCodec::kRaw;
  StateCodec state_codec = StateCodec::kRaw;
  std::span<const std::uint8_t> begin_section;
  std::span<const std::uint8_t> end_section;
  std::span<const std::uint8_t> state_section;

  [[nodiscard]] std::size_t encoded_bytes() const noexcept {
    return begin_section.size() + end_section.size() + state_section.size();
  }
};

/// Owning result of encode_columns: the three encoded sections stored
/// back-to-back in one buffer, plus the chunk fences and boundary
/// intervals re-derived during the encoding scan (so callers building a
/// chunk need no second pass).
struct EncodedColumns {
  std::uint64_t count = 0;
  TimeCodec begin_codec = TimeCodec::kRaw;
  TimeCodec end_codec = TimeCodec::kRaw;
  StateCodec state_codec = StateCodec::kRaw;
  /// Section split of `bytes`: begins at [0, begin_bytes), ends at
  /// [begin_bytes, begin_bytes + end_bytes), states last.
  std::uint64_t begin_bytes = 0;
  std::uint64_t end_bytes = 0;
  std::uint64_t state_bytes = 0;
  std::vector<std::uint8_t> bytes;

  /// Fences and boundary intervals of the encoded run.
  StateInterval first{};
  StateInterval last{};
  TimeNs min_end = 0;
  TimeNs max_end = 0;

  [[nodiscard]] std::size_t encoded_bytes() const noexcept {
    return bytes.size();
  }
  [[nodiscard]] ColumnsCoding coding() const noexcept {
    const std::span<const std::uint8_t> all(bytes);
    return {count,
            begin_codec,
            end_codec,
            state_codec,
            all.subspan(0, static_cast<std::size_t>(begin_bytes)),
            all.subspan(static_cast<std::size_t>(begin_bytes),
                        static_cast<std::size_t>(end_bytes)),
            all.subspan(static_cast<std::size_t>(begin_bytes + end_bytes),
                        static_cast<std::size_t>(state_bytes))};
  }
};

/// Encodes one chunk's columns (non-empty, sorted by the total (begin,
/// end, state) key, every end >= its begin), choosing the cheapest codec
/// per column.  The raw candidates guarantee encoded_bytes() never exceeds
/// the raw column bytes.  Throws InvalidArgument on empty or mismatched
/// columns.
[[nodiscard]] EncodedColumns encode_columns(std::span<const TimeNs> begins,
                                            std::span<const TimeNs> ends,
                                            std::span<const StateId> states);

// --- Streaming decoder -----------------------------------------------------

/// Streams the intervals of one encoded chunk in order, one at a time,
/// from the encoded sections — the fixed-size decoder state *is* the
/// per-run cursor buffer, so consuming a compressed chunk never
/// materialises a column.  Throws TraceFormatError on malformed streams
/// (truncated varints, dictionary/run inconsistencies, invalid codec for
/// the column); semantic validation (sort order, end >= begin, state
/// range, fences) stays with the caller, which sees every decoded value.
class ColumnsDecoder {
 public:
  /// The coding's sections must outlive the decoder.
  explicit ColumnsDecoder(const ColumnsCoding& coding);

  ColumnsDecoder(ColumnsDecoder&&) noexcept = default;
  ColumnsDecoder& operator=(ColumnsDecoder&&) noexcept = default;

  /// Decodes the next interval into `out`; false once `count` intervals
  /// were delivered.  After the last interval, the decoder additionally
  /// verifies that every section was consumed exactly (trailing garbage
  /// inside a section throws).
  bool next(StateInterval& out);

  [[nodiscard]] std::uint64_t produced() const noexcept { return produced_; }

  /// Approximate heap + stack footprint of one live decoder (cursor
  /// scratch accounting): the object itself plus the decoded dictionary.
  [[nodiscard]] std::size_t scratch_bytes() const noexcept {
    return sizeof(*this) + dict_.capacity() * sizeof(StateId);
  }

 private:
  struct SectionCursor {
    std::span<const std::uint8_t> bytes;
    std::size_t pos = 0;
  };

  [[nodiscard]] std::uint64_t take_varint(SectionCursor& cur,
                                          const char* what);
  [[nodiscard]] TimeNs next_begin();
  [[nodiscard]] TimeNs next_end(TimeNs begin);
  [[nodiscard]] StateId next_state();
  void check_drained() const;

  std::uint64_t count_ = 0;
  std::uint64_t produced_ = 0;
  TimeCodec begin_codec_ = TimeCodec::kRaw;
  TimeCodec end_codec_ = TimeCodec::kRaw;
  StateCodec state_codec_ = StateCodec::kRaw;
  SectionCursor begin_cur_;
  SectionCursor end_cur_;
  SectionCursor state_cur_;

  // Time-column running state (wrap-around uint64 arithmetic).
  std::uint64_t prev_begin_ = 0;
  std::uint64_t prev_begin_delta_ = 0;
  std::uint64_t const_begin_ = 0;
  std::uint64_t prev_end_ = 0;
  std::uint64_t prev_duration_ = 0;
  std::uint64_t prev_duration_delta_ = 0;
  std::uint64_t const_duration_ = 0;

  // State-column running state.
  std::vector<StateId> dict_;
  std::uint64_t run_remaining_ = 0;
  StateId run_value_ = 0;
  std::uint32_t pack_width_ = 0;
  std::uint64_t pack_acc_ = 0;
  std::uint32_t pack_bits_ = 0;
};

}  // namespace stagg
