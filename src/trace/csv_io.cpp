#include "trace/csv_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace stagg {

void write_csv_trace(Trace& trace, std::ostream& os) {
  trace.seal();
  // Fields are comma-separated with no quoting: a comma inside a name
  // would be re-read as a separator (the reader then rejects the record
  // or, worse, silently mis-assigns fields).
  require_delimiter_safe_names(trace, "resource path");
  os << "# stagg-trace-csv v1\n";
  os << "# window," << trace.begin() << ',' << trace.end() << '\n';
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    const auto& path = trace.resource_path(r);
    for (const auto& s : trace.intervals(r)) {
      os << "STATE," << path << ',' << trace.states().name(s.state) << ','
         << s.begin << ',' << s.end << '\n';
    }
  }
}

std::uint64_t write_csv_trace(Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open '" + path + "' for writing");
  write_csv_trace(trace, os);
  os.flush();
  if (!os) throw IoError("short write to '" + path + "'");
  return static_cast<std::uint64_t>(os.tellp());
}

Trace read_csv_trace(std::istream& is, const std::string& context) {
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  bool have_window = false;
  TimeNs wbegin = 0, wend = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view sv = trim(line);
    if (sv.empty()) continue;
    if (sv.front() == '#') {
      if (starts_with(sv, "# window,")) {
        const auto fields = split(sv.substr(2), ',');
        if (fields.size() != 3) {
          throw TraceFormatError("bad window comment at " + context + ":" +
                                 std::to_string(line_no));
        }
        wbegin = parse_int(fields[1], context);
        wend = parse_int(fields[2], context);
        have_window = true;
      }
      continue;
    }
    const auto fields = split(sv, ',');
    const std::string where = context + ":" + std::to_string(line_no);
    if (fields.size() != 5 || fields[0] != "STATE") {
      throw TraceFormatError("expected STATE record with 5 fields at " +
                             where);
    }
    const ResourceId r = trace.add_resource(fields[1]);
    const StateId x = trace.states().intern(fields[2]);
    const TimeNs begin = parse_int(fields[3], where);
    const TimeNs end = parse_int(fields[4], where);
    if (end < begin) {
      throw TraceFormatError("end < begin at " + where);
    }
    trace.add_state(r, x, begin, end);
  }
  if (have_window) trace.set_window(wbegin, wend);
  trace.seal();
  return trace;
}

Trace read_csv_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open '" + path + "'");
  return read_csv_trace(is, path);
}

}  // namespace stagg
