#include "trace/csv_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "trace/stream_decode.hpp"

namespace stagg {

void write_csv_trace(Trace& trace, std::ostream& os) {
  trace.seal();
  // Fields are comma-separated with no quoting: a comma inside a name
  // would be re-read as a separator (the reader then rejects the record
  // or, worse, silently mis-assigns fields).
  require_delimiter_safe_names(trace, "resource path");
  os << "# stagg-trace-csv v1\n";
  os << "# window," << trace.begin() << ',' << trace.end() << '\n';
  for (ResourceId r = 0; r < static_cast<ResourceId>(trace.resource_count());
       ++r) {
    const auto& path = trace.resource_path(r);
    for (const auto& s : trace.intervals(r)) {
      os << "STATE," << path << ',' << trace.states().name(s.state) << ','
         << s.begin << ',' << s.end << '\n';
    }
  }
}

std::uint64_t write_csv_trace(Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open '" + path + "' for writing");
  write_csv_trace(trace, os);
  os.flush();
  if (!os) throw IoError("short write to '" + path + "'");
  return static_cast<std::uint64_t>(os.tellp());
}

Trace read_csv_trace(std::istream& is, const std::string& context) {
  // Thin shim over the resumable byte-range decoder (stream_decode.hpp):
  // the whole-file path and the pipeline's parallel shard decode share one
  // record grammar, so they accept and reject exactly the same inputs.
  Trace trace;
  TextTraceDecoder decoder(TextTraceFormat::kCsv, context);
  const DecodedTextSink sink = [&trace](const DecodedTextRecord& rec) {
    const ResourceId r = trace.add_resource(rec.resource);
    const StateId x = trace.states().intern(rec.state);
    trace.add_state(r, x, rec.begin, rec.end);
  };
  char buf[1 << 16];
  while (is.read(buf, sizeof buf) || is.gcount() > 0) {
    decoder.feed({buf, static_cast<std::size_t>(is.gcount())}, sink);
  }
  decoder.finish(sink);
  if (decoder.has_window()) {
    trace.set_window(decoder.window_begin(), decoder.window_end());
  }
  trace.seal();
  return trace;
}

Trace read_csv_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open '" + path + "'");
  return read_csv_trace(is, path);
}

}  // namespace stagg
