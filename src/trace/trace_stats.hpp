// Trace statistics: the numbers reported in the descriptive half of
// Table II (event counts, sizes) plus per-state duration summaries used by
// the Vampir-style task profile baseline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace stagg {

/// Per-state aggregate over the whole trace.
struct StateSummary {
  StateId state = kNoState;
  std::string name;
  std::uint64_t occurrences = 0;
  TimeNs total_duration = 0;
  double fraction_of_busy_time = 0.0;  ///< share of summed state time
};

/// Whole-trace statistics.
struct TraceStats {
  std::uint64_t state_count = 0;
  std::uint64_t event_count = 0;  ///< 2 x state_count
  std::size_t resource_count = 0;
  TimeNs window_begin = 0;
  TimeNs window_end = 0;
  TimeNs busy_time = 0;            ///< sum of all state durations
  double mean_states_per_resource = 0.0;
  std::vector<StateSummary> per_state;  ///< sorted by total duration desc
};

/// Computes statistics (requires or performs seal()).
[[nodiscard]] TraceStats compute_stats(Trace& trace);

/// Per-resource vector of total duration per state — the feature vectors of
/// the Vampir task-profile clustering baseline (Table I row 7).  Layout:
/// result[resource][state] in seconds.
[[nodiscard]] std::vector<std::vector<double>> state_duration_vectors(
    const Trace& trace);

/// Renders the stats as a short report block.
[[nodiscard]] std::string format_stats(const TraceStats& stats);

}  // namespace stagg
