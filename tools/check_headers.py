#!/usr/bin/env python3
"""Header self-containment checker.

Compiles every header under src/ standalone (a one-line TU consisting of
just `#include "<header>"`) with `-fsyntax-only`, so a header that leans on
its includers for <vector>, a forward declaration, or a transitive include
fails here instead of in whichever TU happens to reorder its includes next.

Usage:
    tools/check_headers.py [--src SRC_DIR] [--compiler CXX] [--std c++20]
                           [headers...]

With no positional arguments every `src/**/*.hpp` is checked.  Exits 0 when
all headers compile standalone, 1 otherwise (one diagnostic block per
failing header).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_headers(src_dir: str) -> list[str]:
    headers = []
    for dirpath, _dirnames, filenames in os.walk(src_dir):
        for name in sorted(filenames):
            if name.endswith(".hpp"):
                headers.append(os.path.join(dirpath, name))
    return sorted(headers)


def check_header(header: str, src_dir: str, compiler: str, std: str) -> str | None:
    """Returns the compiler diagnostics for a failing header, None on success."""
    rel = os.path.relpath(header, src_dir)
    with tempfile.TemporaryDirectory(prefix="stagg_hdr_") as tmp:
        tu = os.path.join(tmp, "tu.cpp")
        with open(tu, "w", encoding="utf-8") as f:
            f.write(f'#include "{rel}"\n')
        cmd = [
            compiler,
            f"-std={std}",
            "-fsyntax-only",
            "-Wall",
            "-Wextra",
            f"-I{src_dir}",
            tu,
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            return proc.stderr or proc.stdout
    return None


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--src", default=os.path.join(repo_root(), "src"))
    parser.add_argument("--compiler", default=os.environ.get("CXX", "g++"))
    parser.add_argument("--std", default="c++20")
    parser.add_argument("headers", nargs="*")
    args = parser.parse_args(argv)

    src_dir = os.path.abspath(args.src)
    headers = [os.path.abspath(h) for h in args.headers] or find_headers(src_dir)
    if not headers:
        print(f"check_headers: no headers found under {src_dir}", file=sys.stderr)
        return 1

    failures = 0
    for header in headers:
        diag = check_header(header, src_dir, args.compiler, args.std)
        rel = os.path.relpath(header, src_dir)
        if diag is None:
            print(f"  OK   {rel}")
        else:
            failures += 1
            print(f"  FAIL {rel}", file=sys.stderr)
            print(diag, file=sys.stderr)

    total = len(headers)
    if failures:
        print(
            f"check_headers: {failures}/{total} headers are not self-contained",
            file=sys.stderr,
        )
        return 1
    print(f"check_headers: all {total} headers compile standalone")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
