#!/usr/bin/env python3
"""Self-test for tools/stagg_lint.py.

The important cases are the NEGATIVE ones: each rule is fed a minimal
fixture tree containing a deliberate violation and must report it (exit 1,
rule id in stderr).  A lint that silently passes on a seeded single-writer
violation is worse than no lint — CI runs this before trusting the clean
run over src/.

Run directly (`python3 tools/test_stagg_lint.py`) or via ctest
(`lint_stagg_selftest`).  Pure stdlib, exit 0 on success.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(TOOLS_DIR, "stagg_lint.py")

FAILURES: list[str] = []


def run_lint(root: str, files: list[str]) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, LINT, "--root", root, *files],
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stderr + proc.stdout


def fixture(root: str, rel: str, content: str) -> str:
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)
    return path


def expect(name: str, cond: bool, detail: str = "") -> None:
    status = "ok" if cond else "FAIL"
    print(f"  {status}  {name}")
    if not cond:
        FAILURES.append(f"{name}: {detail}")


def case_single_writer_violation() -> None:
    """A store mutation outside the allowlist must be reported."""
    with tempfile.TemporaryDirectory(prefix="stagg_lint_") as root:
        path = fixture(
            root,
            "src/viz/rogue.cpp",
            "void render(std::shared_ptr<TraceStore> store) {\n"
            "  store->seal_chunk();\n"
            "}\n",
        )
        rc, out = run_lint(root, [path])
        expect("single-writer: seeded violation fails", rc == 1, out)
        expect("single-writer: rule named in output", "single-writer" in out, out)
        expect("single-writer: method named", "seal_chunk" in out, out)


def case_single_writer_allowlisted_file() -> None:
    """The same call inside an allowlisted file is legal."""
    with tempfile.TemporaryDirectory(prefix="stagg_lint_") as root:
        path = fixture(
            root,
            "src/core/session_manager.cpp",
            "void SessionManager::ingest() {\n"
            "  store_->seal_chunk();\n"
            "}\n",
        )
        rc, out = run_lint(root, [path])
        expect("single-writer: allowlisted file passes", rc == 0, out)


def case_single_writer_function_scoped() -> None:
    """ingest_pipeline.cpp allows store writes ONLY inside seal_worker."""
    with tempfile.TemporaryDirectory(prefix="stagg_lint_") as root:
        ok = fixture(
            root,
            "src/core/ingest_pipeline.cpp",
            "void IngestPipeline::seal_worker() {\n"
            "  shared_store->add_state(r, s, b, e);\n"
            "}\n",
        )
        rc, out = run_lint(root, [ok])
        expect("single-writer: seal_worker may write", rc == 0, out)

        bad = fixture(
            root,
            "src/core/ingest_pipeline.cpp",
            "void IngestPipeline::parse_worker() {\n"
            "  shared_store->add_state(r, s, b, e);\n"
            "}\n",
        )
        rc, out = run_lint(root, [bad])
        expect("single-writer: parse_worker may not write", rc == 1, out)


def case_single_writer_cross_shard() -> None:
    """Sharded-store era: a write through a *shard* receiver outside the
    allowlist — the cross-shard mutation the per-shard single-writer rule
    exists to catch — must be reported, including subscripted receivers."""
    with tempfile.TemporaryDirectory(prefix="stagg_lint_") as root:
        bad = fixture(
            root,
            "src/core/rogue_shard.cpp",
            "void poke(ShardedTraceStore& sharded, std::size_t k) {\n"
            "  sharded.shard_handles()[k];\n"
            "  other_shard->seal_chunk();\n"
            "}\n",
        )
        rc, out = run_lint(root, [bad])
        expect("single-writer: cross-shard write fails", rc == 1, out)
        expect("single-writer: shard receiver named", "other_shard" in out, out)

        subscripted = fixture(
            root,
            "src/core/rogue_shard2.cpp",
            "void poke(std::vector<std::shared_ptr<TraceStore>>& shards_) {\n"
            "  shards_[2]->add_state(r, s, b, e);\n"
            "}\n",
        )
        rc, out = run_lint(root, [subscripted])
        expect("single-writer: subscripted shard receiver fails", rc == 1, out)

        facade = fixture(
            root,
            "src/trace/sharded_store.cpp",
            "void ShardedTraceStore::seal_chunk() {\n"
            "  shards_[k]->seal_chunk();\n"
            "}\n",
        )
        rc, out = run_lint(root, [facade])
        expect("single-writer: facade's routed write is allowlisted",
               rc == 0, out)


def case_suppression_requires_justification() -> None:
    with tempfile.TemporaryDirectory(prefix="stagg_lint_") as root:
        justified = fixture(
            root,
            "src/viz/ok.cpp",
            "void f(TraceStore& store) {\n"
            "  // stagg-lint: allow(single-writer) exclusive store, tool-owned\n"
            "  store.seal_chunk();\n"
            "}\n",
        )
        rc, out = run_lint(root, [justified])
        expect("suppression with justification passes", rc == 0, out)

        bare = fixture(
            root,
            "src/viz/bad.cpp",
            "void f(TraceStore& store) {\n"
            "  // stagg-lint: allow(single-writer)\n"
            "  store.seal_chunk();\n"
            "}\n",
        )
        rc, out = run_lint(root, [bare])
        expect("suppression without justification fails", rc == 1, out)


def case_queue_under_lock() -> None:
    with tempfile.TemporaryDirectory(prefix="stagg_lint_") as root:
        bad = fixture(
            root,
            "src/core/pipe.cpp",
            "void f() {\n"
            "  std::unique_lock<std::mutex> lock(mu_);\n"
            "  work_queue.push(item);\n"
            "}\n",
        )
        rc, out = run_lint(root, [bad])
        expect("queue-under-lock: push under guard fails", rc == 1, out)
        expect("queue-under-lock: rule named", "queue-under-lock" in out, out)

        released = fixture(
            root,
            "src/core/pipe2.cpp",
            "void f() {\n"
            "  std::unique_lock<std::mutex> lock(mu_);\n"
            "  lock.unlock();\n"
            "  work_queue.push(item);\n"
            "}\n",
        )
        rc, out = run_lint(root, [released])
        expect("queue-under-lock: push after unlock passes", rc == 0, out)

        scoped = fixture(
            root,
            "src/core/pipe3.cpp",
            "void f() {\n"
            "  {\n"
            "    std::lock_guard<std::mutex> lock(mu_);\n"
            "    counter += 1;\n"
            "  }\n"
            "  work_queue.pop(item);\n"
            "}\n",
        )
        rc, out = run_lint(root, [scoped])
        expect("queue-under-lock: pop after guard scope passes", rc == 0, out)


def case_narrowing_cast() -> None:
    with tempfile.TemporaryDirectory(prefix="stagg_lint_") as root:
        bad = fixture(
            root,
            "src/trace/compression.cpp",
            "std::uint8_t tag(std::uint64_t v) {\n"
            "  return static_cast<std::uint8_t>(v);\n"
            "}\n",
        )
        rc, out = run_lint(root, [bad])
        expect("narrowing-cast: raw cast in codec path fails", rc == 1, out)

        elsewhere = fixture(
            root,
            "src/viz/colors.cpp",
            "std::uint8_t tag(std::uint64_t v) {\n"
            "  return static_cast<std::uint8_t>(v);\n"
            "}\n",
        )
        rc, out = run_lint(root, [elsewhere])
        expect("narrowing-cast: same cast outside codec paths passes",
               rc == 0, out)


def case_raw_intrinsic() -> None:
    """Raw intrinsics are legal only inside the simd.hpp dispatch seam."""
    with tempfile.TemporaryDirectory(prefix="stagg_lint_") as root:
        bad = fixture(
            root,
            "src/core/fast_path.cpp",
            "void fold(const float* p, float* out) {\n"
            "  __m128 v = _mm_add_ps(_mm_loadu_ps(p), _mm_loadu_ps(p + 4));\n"
            "  _mm_storeu_ps(out, v);\n"
            "}\n",
        )
        rc, out = run_lint(root, [bad])
        expect("raw-intrinsic: x86 intrinsic outside simd.hpp fails",
               rc == 1, out)
        expect("raw-intrinsic: rule named in output", "raw-intrinsic" in out,
               out)
        expect("raw-intrinsic: intrinsic named", "_mm_add_ps" in out, out)

        neon = fixture(
            root,
            "src/trace/neon_path.cpp",
            "void fold(const uint64_t* p, uint64_t* out) {\n"
            "  vst1q_u64(out, vaddq_u64(vld1q_u64(p), vld1q_u64(p + 2)));\n"
            "}\n",
        )
        rc, out = run_lint(root, [neon])
        expect("raw-intrinsic: NEON intrinsic outside simd.hpp fails",
               rc == 1, out)

        seam = fixture(
            root,
            "src/common/simd.hpp",
            "inline __m256d add(__m256d a, __m256d b) {\n"
            "  return _mm256_add_pd(a, b);\n"
            "}\n",
        )
        rc, out = run_lint(root, [seam])
        expect("raw-intrinsic: simd.hpp itself is allowed", rc == 0, out)


def case_real_tree_is_clean() -> None:
    """The rule set must hold over the actual src/ tree (default mode)."""
    proc = subprocess.run(
        [sys.executable, LINT], capture_output=True, text=True
    )
    expect("src/ tree lints clean", proc.returncode == 0,
           proc.stderr + proc.stdout)


def main() -> int:
    for case in (
        case_single_writer_violation,
        case_single_writer_allowlisted_file,
        case_single_writer_function_scoped,
        case_single_writer_cross_shard,
        case_suppression_requires_justification,
        case_queue_under_lock,
        case_narrowing_cast,
        case_raw_intrinsic,
        case_real_tree_is_clean,
    ):
        print(f"{case.__name__}:")
        case()
    if FAILURES:
        print(f"test_stagg_lint: {len(FAILURES)} failure(s)", file=sys.stderr)
        for f in FAILURES:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("test_stagg_lint: all cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
