#!/usr/bin/env python3
"""stagg_lint — project-specific lint for invariants clang-tidy can't see.

Rules (each has an id; suppress a finding with a trailing or preceding
`// stagg-lint: allow(<rule-id>) <one-line justification>` comment — the
justification is mandatory):

  single-writer    TraceStore write-side methods (add_state, seal_chunk,
                   evict_before, erase_before_exact, adopt_chunk, spill_cold,
                   pin, pin_all, set_compression, enable_spill, set_window,
                   add_resource) may only be called from the files/functions
                   that own a store's single-writer side: the store itself,
                   the Trace value facade, binary_io's fresh-store readers,
                   SessionManager's central-ingest path, SlidingWindowSession
                   (exclusive stores), IngestPipeline's seal worker, and the
                   ShardedTraceStore facade (which routes each write to the
                   owning shard from exactly one task — single writer *per
                   shard*).  Receivers are recognized syntactically
                   (identifiers containing `store` or `shard`, optionally
                   subscripted like `shards_[k]`, or `snapshot`); new
                   library code that mutates a shared or per-shard store
                   trips this rule.

  queue-under-lock A blocking BoundedQueue push()/pop() while a mutex guard
                   (std::lock_guard / std::unique_lock / std::scoped_lock)
                   is live in the enclosing scope.  Blocking on a queue edge
                   while holding a lock turns backpressure into deadlock;
                   use try_push/try_pop, or release the guard first
                   (lock.unlock() clears the rule).

  narrowing-cast   A narrowing integer cast (static_cast or C-style to a
                   sub-64-bit integer type) inside the codec/decoder
                   encode paths (src/trace/compression.cpp,
                   src/trace/binary_io.cpp).  Use stagg::narrow<T>() (value-
                   checked in audit builds) or stagg::wrap_u8() (documented
                   truncation) from common/contract.hpp instead, so every
                   lossy conversion in the on-disk formats is deliberate.

  raw-intrinsic    A raw SIMD intrinsic call (x86 `_mm*_*`/`_mm256_*` or
                   NEON `vld1q_*`-family) anywhere except
                   src/common/simd.hpp.  All vector code goes through the
                   fixed-width wrappers so every kernel keeps a scalar twin,
                   the STAGG_SIMD=OFF build stays complete, and the
                   bit-identity contract is auditable in one file.

Modes:
  tools/stagg_lint.py                 lint src/ (default)
  tools/stagg_lint.py --headers       also run header self-containment
                                      (delegates to check_headers.py)
  tools/stagg_lint.py FILE...         lint specific files (tests use this)

Exit status: 0 clean, 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# --- Rule: single-writer ----------------------------------------------------

WRITE_METHODS = (
    "add_state",
    "seal_chunk",
    "evict_before",
    "erase_before_exact",
    "adopt_chunk",
    "spill_cold",
    "pin",
    "pin_all",
    "set_compression",
    "enable_spill",
    "set_window",
    "add_resource",
)

# Call sites allowed to mutate a TraceStore.  Entries are repo-relative file
# paths; the optional function set restricts the allowance to specific
# enclosing functions (None = whole file).  This list IS the single-writer
# policy: growing it is a reviewed decision, not a local convenience.
SINGLE_WRITER_ALLOWLIST: dict[str, set[str] | None] = {
    # The store's own implementation.
    "src/trace/trace_store.cpp": None,
    "src/trace/trace_store.hpp": None,
    # Value-semantic facade: a Trace owns its store exclusively.
    "src/trace/trace.hpp": None,
    "src/trace/trace.cpp": None,
    # Readers build *fresh* stores no session has seen yet.
    "src/trace/binary_io.cpp": None,
    # The sharded facade: every write routes to the owning shard from
    # exactly one task (the single-writer rule holds *per shard*); the
    # audit()/read side never mutates.
    "src/trace/sharded_store.cpp": None,
    # The central-ingest path: the manager owns the shared store's write side.
    "src/core/session_manager.cpp": None,
    # Exclusive-store sessions own their store (shared attaches are read-only
    # by construction; the ctor enforces it).
    "src/core/sliding_window.cpp": None,
    # The pipeline's sole TraceStore writer is the seal worker.
    "src/core/ingest_pipeline.cpp": {"seal_worker"},
}

# NB: `\w*` on both sides may be empty — a bare `store->` or `store_->`
# receiver must match (requiring a prefix let the two most common receiver
# spellings through silently).  Shard receivers (`sharded_`, `shards_[k]`,
# any identifier containing shard, optionally subscripted) are store
# handles too: a cross-shard write from the wrong task is exactly the
# violation this rule exists to catch.
STORE_RECEIVER = re.compile(
    r"\b(?P<recv>\w*(?:store|Store|shard|Shard)\w*(?:\[[^\]]*\])?|snapshot)"
    r"(?:\.|->)"
    r"(?P<method>" + "|".join(WRITE_METHODS) + r")\s*\("
)

# Matches `TraceStore::method(` style qualified definitions — not calls.
QUALIFIED_DEF = re.compile(r"\bTraceStore::\w+\s*\(")

FUNC_DEF = re.compile(
    r"^[\w:<>,&*\s\[\]]*?\b(?:[A-Za-z_]\w*::)*(?P<name>[A-Za-z_]\w*)\s*\([^;]*$"
    r"|^[\w:<>,&*\s\[\]]*?\b(?:[A-Za-z_]\w*::)*(?P<name2>[A-Za-z_]\w*)\s*\(.*\)"
    r"\s*(?:const|noexcept|override|final|\s)*\{"
)

SUPPRESS = re.compile(r"//\s*stagg-lint:\s*allow\((?P<rules>[\w\-, ]+)\)\s*(?P<why>.*)")

NARROW_CAST = re.compile(
    r"static_cast<\s*(?:std::)?(?:u?int(?:8|16|32)_t|int|unsigned(?:\s+int)?|"
    r"short|char|signed\s+char|unsigned\s+char)\s*>"
    r"|\((?:std::)?u?int(?:8|16|32)_t\)\s*[\w(]"
)

NARROWING_FILES = {
    "src/trace/compression.cpp",
    "src/trace/binary_io.cpp",
}

# --- Rule: raw-intrinsic ----------------------------------------------------

# x86 SSE/AVX (`_mm_*`, `_mm256_*`, `_mm512_*`) and the common ARM NEON
# intrinsic families.  Matches calls, not the header names.
RAW_INTRINSIC = re.compile(
    r"\b(?P<name>_mm(?:256|512)?_[a-z0-9_]+"
    r"|v(?:ld1|st1|add|sub|mul|dup|mov|min|max|ceq|cge|cgt|shl|shr|sra"
    r"|and|orr|eor|get|set|reinterpret|cvt)q?_[a-z0-9_]+)\s*\("
)

# The dispatch seam is the only place allowed to spell raw intrinsics.
RAW_INTRINSIC_ALLOWED_FILES = {
    "src/common/simd.hpp",
}

LOCK_DECL = re.compile(
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock)\b[^;]*?\b(?P<var>[A-Za-z_]\w*)\s*[({]"
)
LOCK_RELEASE = re.compile(r"\b(?P<var>[A-Za-z_]\w*)\.unlock\s*\(\s*\)")
BLOCKING_QUEUE_OP = re.compile(
    r"\b(?P<recv>[\w\]\[\.\->]*(?:queue|Queue)\w*(?:\[[^\]]*\])?)\s*"
    r"(?:\.|->)\s*(?P<op>push|pop)\s*\("
)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings_and_comments(line: str) -> tuple[str, str | None]:
    """Returns (code, suppression-comment-or-None) for one source line.

    String/char literals are blanked so their contents can't trip rules;
    `//` comments are removed from the code but searched for suppressions.
    Block comments are handled crudely (line-local only) — good enough for
    this codebase's style.
    """
    out = []
    i, n = 0, len(line)
    comment = None
    in_str: str | None = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            comment = line[i:]
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                comment = line[i:]
                break
            i = end + 2
            continue
        out.append(c)
        i += 1
    return "".join(out), comment


def suppressions_for(comment: str | None) -> set[str]:
    if not comment:
        return set()
    m = SUPPRESS.search(comment)
    if not m:
        return set()
    if not m.group("why").strip():
        # A suppression without a justification suppresses nothing.
        return set()
    return {r.strip() for r in m.group("rules").split(",") if r.strip()}


def current_function(code_lines: list[str], upto: int) -> str:
    """Best-effort name of the function containing line index `upto`."""
    depth = 0
    for i in range(upto, -1, -1):
        line = code_lines[i]
        depth += line.count("}") - line.count("{")
        if depth < 0:
            # `i` opened a scope still unclosed at `upto` — find its function
            # header by scanning up for a `name(...)` before this `{`.
            for j in range(i, max(-1, i - 8), -1):
                m = re.search(r"\b([A-Za-z_~]\w*)\s*\([^;{]*\)?\s*"
                              r"(?:const|noexcept|override|final|->\s*[\w:<>]+|\s)*$",
                              code_lines[j].split("{")[0])
                if m:
                    return m.group(1)
            depth = 0  # keep scanning upward for an outer scope
    return "<file-scope>"


def lint_file(path: str, rel: str, findings: list[Finding]) -> None:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        findings.append(Finding(rel, 0, "io", f"cannot read: {e}"))
        return

    code_lines: list[str] = []
    comments: list[str | None] = []
    for line in raw_lines:
        code, comment = strip_strings_and_comments(line)
        code_lines.append(code)
        comments.append(comment)

    allow_file = SINGLE_WRITER_ALLOWLIST.get(rel)
    file_allowed_everywhere = rel in SINGLE_WRITER_ALLOWLIST and allow_file is None

    # Live lock guards: list of (brace_depth_at_decl, varname).
    live_locks: list[tuple[int, str]] = []
    depth = 0

    for idx, code in enumerate(code_lines):
        lineno = idx + 1
        suppressed = suppressions_for(comments[idx])
        if idx + 1 < len(comments):
            pass
        prev_suppressed = suppressions_for(comments[idx - 1]) if idx > 0 else set()
        allowed = suppressed | prev_suppressed

        # --- single-writer ---------------------------------------------------
        if not file_allowed_everywhere:
            for m in STORE_RECEIVER.finditer(code):
                if "single-writer" in allowed:
                    continue
                func = current_function(code_lines, idx)
                if allow_file is not None and func in allow_file:
                    continue
                findings.append(
                    Finding(
                        rel,
                        lineno,
                        "single-writer",
                        f"TraceStore write-side call `{m.group('recv')}"
                        f"->{m.group('method')}()` outside the single-writer "
                        f"allowlist (enclosing function: {func}); only "
                        "SessionManager's central-ingest path and "
                        "IngestPipeline's seal worker may mutate a shared "
                        "store",
                    )
                )

        # --- queue-under-lock ------------------------------------------------
        if rel != "src/common/bounded_queue.hpp":
            for m in LOCK_DECL.finditer(code):
                live_locks.append((depth, m.group("var")))
            for m in LOCK_RELEASE.finditer(code):
                live_locks = [lk for lk in live_locks if lk[1] != m.group("var")]
            if live_locks:
                for m in BLOCKING_QUEUE_OP.finditer(code):
                    if "queue-under-lock" in allowed:
                        continue
                    findings.append(
                        Finding(
                            rel,
                            lineno,
                            "queue-under-lock",
                            f"blocking BoundedQueue `{m.group('op')}()` on "
                            f"`{m.group('recv')}` while lock guard "
                            f"`{live_locks[-1][1]}` is live — blocking a "
                            "backpressure edge under a mutex can deadlock "
                            "the pipeline; use try_push/try_pop or release "
                            "the guard first",
                        )
                    )

        # --- narrowing-cast --------------------------------------------------
        if rel in NARROWING_FILES:
            for m in NARROW_CAST.finditer(code):
                if "narrowing-cast" in allowed:
                    continue
                findings.append(
                    Finding(
                        rel,
                        lineno,
                        "narrowing-cast",
                        f"narrowing integer cast `{m.group(0)}` in a "
                        "codec/decoder path; use stagg::narrow<T>() "
                        "(value-checked) or stagg::wrap_u8() (documented "
                        "truncation) from common/contract.hpp",
                    )
                )

        # --- raw-intrinsic ---------------------------------------------------
        if rel not in RAW_INTRINSIC_ALLOWED_FILES:
            for m in RAW_INTRINSIC.finditer(code):
                if "raw-intrinsic" in allowed:
                    continue
                findings.append(
                    Finding(
                        rel,
                        lineno,
                        "raw-intrinsic",
                        f"raw SIMD intrinsic `{m.group('name')}` outside "
                        "src/common/simd.hpp; use the fixed-width wrappers "
                        "(simd::f64x4 et al.) so the kernel keeps a scalar "
                        "twin and the STAGG_SIMD=OFF build stays complete",
                    )
                )

        # Brace depth update + lock-guard scope expiry.
        depth += code.count("{") - code.count("}")
        live_locks = [lk for lk in live_locks if lk[0] <= depth]


def default_targets() -> list[str]:
    targets = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(REPO_ROOT, "src")):
        for name in sorted(filenames):
            if name.endswith((".cpp", ".hpp")):
                targets.append(os.path.join(dirpath, name))
    return sorted(targets)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--headers", action="store_true",
                        help="also check header self-containment")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repo root used to relativize paths "
                             "(tests point this at fixture trees)")
    parser.add_argument("files", nargs="*")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    files = [os.path.abspath(f) for f in args.files] or default_targets()

    findings: list[Finding] = []
    for path in files:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        lint_file(path, rel, findings)

    for f in findings:
        print(f, file=sys.stderr)

    header_rc = 0
    if args.headers:
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        import check_headers  # noqa: E402

        header_rc = check_headers.main([])

    if findings:
        print(f"stagg_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if header_rc != 0:
        return header_rc
    print(f"stagg_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
